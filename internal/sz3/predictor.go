package sz3

// lorenzoPredict computes the Lorenzo prediction for the element at
// row-major index idx from already-reconstructed neighbours. recon holds
// reconstructed values for all indices processed before idx (row-major
// order); unprocessed positions are unspecified and must not be read.
//
// The Lorenzo predictor estimates a value from the corner stencil of the
// hypercube behind it (paper §II-B / SZ literature):
//
//	1D: f(i-1)
//	2D: f(i-1,j) + f(i,j-1) - f(i-1,j-1)
//	3D: f(i-1)+f(j-1)+f(k-1) - f(i-1,j-1)-f(i-1,k-1)-f(j-1,k-1)
//	    + f(i-1,j-1,k-1)
//
// Out-of-bounds neighbours contribute 0, which makes the first element of
// each dimension effectively delta-coded from zero.
type lorenzo struct {
	dims []int
	// strides[d] is the row-major stride of dimension d.
	strides []int
}

func newLorenzo(dims []int) *lorenzo {
	strides := make([]int, len(dims))
	s := 1
	for d := len(dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= dims[d]
	}
	return &lorenzo{dims: dims, strides: strides}
}

// coords converts a row-major index into per-dimension coordinates.
func (l *lorenzo) coords(idx int, out []int) {
	for d := 0; d < len(l.dims); d++ {
		out[d] = idx / l.strides[d] % l.dims[d]
	}
}

// predict returns the Lorenzo prediction for index idx.
func (l *lorenzo) predict(recon []float64, idx int, c []int) float64 {
	switch len(l.dims) {
	case 1:
		if c[0] == 0 {
			return 0
		}
		return recon[idx-1]
	case 2:
		sj := l.strides[0]
		i, j := c[0], c[1]
		var a, b, d float64
		if i > 0 {
			a = recon[idx-sj]
		}
		if j > 0 {
			b = recon[idx-1]
		}
		if i > 0 && j > 0 {
			d = recon[idx-sj-1]
		}
		return a + b - d
	default: // 3
		si, sj := l.strides[0], l.strides[1]
		i, j, k := c[0], c[1], c[2]
		var fi, fj, fk, fij, fik, fjk, fijk float64
		if i > 0 {
			fi = recon[idx-si]
		}
		if j > 0 {
			fj = recon[idx-sj]
		}
		if k > 0 {
			fk = recon[idx-1]
		}
		if i > 0 && j > 0 {
			fij = recon[idx-si-sj]
		}
		if i > 0 && k > 0 {
			fik = recon[idx-si-1]
		}
		if j > 0 && k > 0 {
			fjk = recon[idx-sj-1]
		}
		if i > 0 && j > 0 && k > 0 {
			fijk = recon[idx-si-sj-1]
		}
		return fi + fj + fk - fij - fik - fjk + fijk
	}
}

// regressionModel is a per-block linear model value = c0 + Σ c[d+1]*x_d,
// where x_d are block-local coordinates. SZ3 fits such a model per 6³
// block and uses it when it beats Lorenzo.
type regressionModel struct {
	coef [4]float32 // c0, ci, cj, ck (unused trailing coefficients zero)
}

// eval evaluates the model at block-local coordinates.
func (m regressionModel) eval(local []int) float64 {
	v := float64(m.coef[0])
	for d := 0; d < len(local); d++ {
		v += float64(m.coef[d+1]) * float64(local[d])
	}
	return v
}

// fitRegression least-squares-fits a linear model over the block whose
// elements are provided as (local coordinates, value) via the iterator.
// For a linear model with independent coordinates the normal equations
// decouple per dimension when coordinates are centred, giving the
// closed-form solution SZ3 uses.
func fitRegression(ndims int, n int, forEach func(yield func(local []int, v float64))) regressionModel {
	if n == 0 {
		return regressionModel{}
	}
	// Means.
	meanX := make([]float64, ndims)
	var meanV float64
	forEach(func(local []int, v float64) {
		for d := 0; d < ndims; d++ {
			meanX[d] += float64(local[d])
		}
		meanV += v
	})
	fn := float64(n)
	for d := range meanX {
		meanX[d] /= fn
	}
	meanV /= fn
	// Per-dimension slopes: cov(x_d, v) / var(x_d). For a full regular
	// block the coordinates are independent, so this is exact; for ragged
	// edge blocks it is an approximation, which is fine — the model only
	// has to *predict*, correctness comes from the quantizer.
	num := make([]float64, ndims)
	den := make([]float64, ndims)
	forEach(func(local []int, v float64) {
		dv := v - meanV
		for d := 0; d < ndims; d++ {
			dx := float64(local[d]) - meanX[d]
			num[d] += dx * dv
			den[d] += dx * dx
		}
	})
	var m regressionModel
	for d := 0; d < ndims; d++ {
		if den[d] > 0 {
			m.coef[d+1] = float32(num[d] / den[d])
		}
	}
	c0 := meanV
	for d := 0; d < ndims; d++ {
		c0 -= float64(m.coef[d+1]) * meanX[d]
	}
	m.coef[0] = float32(c0)
	return m
}
