package sz3

// quantRadius is the linear-scaling quantizer radius: quantization codes
// occupy [1, 2*quantRadius-1] with code 0 reserved for unpredictable
// values stored exactly (SZ's convention).
const quantRadius = 32768

// numQuantCodes is the entropy-coder alphabet size.
const numQuantCodes = 2 * quantRadius

// quantizer implements SZ3's linear-scaling quantization: the prediction
// error is divided into 2*eb-wide bins so reconstruction stays within eb
// of the original.
type quantizer struct {
	eb    float64 // error bound
	twoEB float64
}

// roundMagic rounds to the nearest integer (ties to even) by pushing the
// value into the 2^52 binade, where the float64 ulp is exactly 1:
// (x + roundMagic) - roundMagic. Three FP adds replace math.Round's
// bit-manipulation sequence. Only valid for |x| < 2^51, but any input
// large enough to break it also fails the quantRadius range check, and
// NaN/±Inf propagate and fail it too. The tie direction differs from
// math.Round at exact bin boundaries; that only selects between two
// equally valid codes — the reconstruction-bound verification is what
// guarantees correctness, not the rounding mode.
const roundMagic = 3 << 51

func roundNearest(x float64) float64 {
	return x + roundMagic - roundMagic
}

func newQuantizer(eb float64) quantizer {
	return quantizer{eb: eb, twoEB: 2 * eb}
}

// quantize maps (original, predicted) to a code and the reconstructed
// value. ok is false when the value cannot be represented within the
// bound (out-of-range code or floating-point cancellation); the caller
// must then store the value exactly and emit code 0.
//
// round32 mirrors the cast the float32 pipeline applies so compressor and
// decompressor reconstructions are bit-identical.
func (q quantizer) quantize(orig, pred float64, round32 bool) (code uint16, recon float64, ok bool) {
	diff := orig - pred
	qi := roundNearest(diff / q.twoEB)
	// The single range comparison replaces the old explicit NaN/Inf
	// checks: a NaN qi fails both comparisons and ±Inf fails one, so all
	// pathological inputs fall through to the exact-storage path without
	// dedicated branches in the hot loop.
	if !(qi > -quantRadius && qi < quantRadius) {
		return 0, 0, false
	}
	recon = pred + qi*q.twoEB
	if round32 {
		recon = float64(float32(recon))
	}
	// Floating-point cancellation can break the bound for huge magnitudes;
	// verify and fall back rather than violate the guarantee. Written as
	// two comparisons (not math.Abs) so a NaN difference also falls back.
	d := recon - orig
	if !(d <= q.eb && d >= -q.eb) {
		return 0, 0, false
	}
	// int32 (not int): qi is in (-32768, 32768) so the sum fits int32 on
	// every platform, keeping the cast well-defined on 32-bit builds.
	return uint16(int32(qi) + quantRadius), recon, true
}

// dequantize reconstructs a value from its code. The caller guarantees
// code != 0.
func (q quantizer) dequantize(pred float64, code uint16, round32 bool) float64 {
	qi := float64(int(code) - quantRadius)
	recon := pred + qi*q.twoEB
	if round32 {
		recon = float64(float32(recon))
	}
	return recon
}
