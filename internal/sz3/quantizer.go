package sz3

import "math"

// quantRadius is the linear-scaling quantizer radius: quantization codes
// occupy [1, 2*quantRadius-1] with code 0 reserved for unpredictable
// values stored exactly (SZ's convention).
const quantRadius = 32768

// numQuantCodes is the entropy-coder alphabet size.
const numQuantCodes = 2 * quantRadius

// quantizer implements SZ3's linear-scaling quantization: the prediction
// error is divided into 2*eb-wide bins so reconstruction stays within eb
// of the original.
type quantizer struct {
	eb    float64 // error bound
	twoEB float64
}

func newQuantizer(eb float64) quantizer {
	return quantizer{eb: eb, twoEB: 2 * eb}
}

// quantize maps (original, predicted) to a code and the reconstructed
// value. ok is false when the value cannot be represented within the
// bound (out-of-range code or floating-point cancellation); the caller
// must then store the value exactly and emit code 0.
//
// round32 mirrors the cast the float32 pipeline applies so compressor and
// decompressor reconstructions are bit-identical.
func (q quantizer) quantize(orig, pred float64, round32 bool) (code uint16, recon float64, ok bool) {
	diff := orig - pred
	qi := math.Round(diff / q.twoEB)
	if math.IsNaN(qi) || math.IsInf(qi, 0) || qi <= -quantRadius || qi >= quantRadius {
		return 0, 0, false
	}
	recon = pred + qi*q.twoEB
	if round32 {
		recon = float64(float32(recon))
	}
	// Floating-point cancellation can break the bound for huge magnitudes;
	// verify and fall back rather than violate the guarantee.
	if math.Abs(recon-orig) > q.eb {
		return 0, 0, false
	}
	return uint16(int(qi) + quantRadius), recon, true
}

// dequantize reconstructs a value from its code. The caller guarantees
// code != 0.
func (q quantizer) dequantize(pred float64, code uint16, round32 bool) float64 {
	qi := float64(int(code) - quantRadius)
	recon := pred + qi*q.twoEB
	if round32 {
		recon = float64(float32(recon))
	}
	return recon
}
