// Package integrity is the compute fault domain: end-to-end defences
// against silent data corruption (SDC) in the compression offload path.
//
// The other five fault domains (engine, network, process, fleet,
// storage) all assume that when a kernel finishes without an error its
// output is correct. A miscompiling SWAR loop, a flipped bit in
// C-Engine SRAM or a stale mempool buffer breaks exactly that
// assumption: the bytes are wrong and every downstream hop — transport
// frame, fleet response, checkpoint shard — faithfully preserves the
// wrong bytes. This package holds the three primitives the defence is
// built from:
//
//   - VerifyMode: the verified-compression policy (Off / Sampled /
//     Full) that decode-verifies compressed output against a source
//     digest before it is released to the caller.
//   - CorruptError: the typed error every hop raises when a carried
//     checksum no longer matches the bytes, identifying the segment
//     and the hop that caught it.
//   - Ledger: the per-unit mismatch ledger behind quarantine — after K
//     verified mismatches a compute unit is pulled from service and
//     half-open re-probed until it proves itself clean again.
package integrity

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// VerifyMode selects how often compressed output is decode-verified
// against its source digest before release.
type VerifyMode uint8

const (
	// VerifyOff trusts kernel output (the pre-PR-9 behaviour).
	VerifyOff VerifyMode = iota
	// VerifySampled verifies one in every SampleN operations — cheap
	// steady-state screening that still bounds the time an SDC-prone
	// unit can emit garbage undetected.
	VerifySampled
	// VerifyFull verifies every operation before release.
	VerifyFull
)

func (m VerifyMode) String() string {
	switch m {
	case VerifyOff:
		return "off"
	case VerifySampled:
		return "sampled"
	case VerifyFull:
		return "full"
	default:
		return fmt.Sprintf("verify(%d)", uint8(m))
	}
}

// DefaultSampleN is the Sampled-mode period when the caller does not
// choose one: verify one operation in every 8.
const DefaultSampleN = 8

// Sampler decides which operations a VerifyMode verifies. It is
// allocation-free and safe for concurrent use (the pipelined path calls
// Hit from every worker).
type Sampler struct {
	mode VerifyMode
	n    uint32
	ctr  atomic.Uint32
}

// NewSampler returns a sampler for mode; n is the Sampled period
// (values < 1 fall back to DefaultSampleN).
func NewSampler(mode VerifyMode, n int) *Sampler {
	if n < 1 {
		n = DefaultSampleN
	}
	return &Sampler{mode: mode, n: uint32(n)}
}

// Mode reports the sampler's verify mode.
func (s *Sampler) Mode() VerifyMode {
	if s == nil {
		return VerifyOff
	}
	return s.mode
}

// Hit reports whether the next operation must be verified. A nil
// sampler never verifies.
func (s *Sampler) Hit() bool {
	if s == nil {
		return false
	}
	switch s.mode {
	case VerifyFull:
		return true
	case VerifySampled:
		return s.ctr.Add(1)%s.n == 0
	default:
		return false
	}
}

// ErrCorrupt is the sentinel every detected-corruption error wraps:
// errors.Is(err, integrity.ErrCorrupt) identifies an SDC caught before
// it escaped, at whatever hop caught it.
var ErrCorrupt = errors.New("integrity: data corruption detected")

// CorruptError identifies a corrupted segment and the hop that caught
// it. Want/Got carry the CRC-32 pair when the detection was a checksum
// comparison (both zero for differential-referee detections).
type CorruptError struct {
	// Hop names the layer that observed the mismatch: "verify",
	// "pipeline", "fleet", "ckpt", "engine".
	Hop string
	// Segment identifies the corrupted unit within the hop (an
	// algorithm name, a shard ID, a checkpoint key...).
	Segment string
	// Index is the chunk index for chunked streams, -1 otherwise.
	Index int
	// Want is the carried (source) CRC-32; Got the CRC-32 of the bytes
	// observed at the hop.
	Want, Got uint32
}

func (e *CorruptError) Error() string {
	if e.Want == 0 && e.Got == 0 {
		return fmt.Sprintf("integrity: corruption at hop %s (segment %s, index %d): referee mismatch",
			e.Hop, e.Segment, e.Index)
	}
	return fmt.Sprintf("integrity: corruption at hop %s (segment %s, index %d): crc %08x, carried %08x",
		e.Hop, e.Segment, e.Index, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// LedgerConfig tunes the quarantine ladder. The zero value uses the
// defaults.
type LedgerConfig struct {
	// Quarantine after this many consecutive verified mismatches
	// (default 3). A single cosmic-ray flip should not bench a core;
	// a pattern should.
	Threshold int
	// While quarantined, let one probe operation through every
	// ProbeEvery Allow calls (default 8) — the half-open re-probe.
	ProbeEvery int
}

func (c LedgerConfig) threshold() int {
	if c.Threshold <= 0 {
		return 3
	}
	return c.Threshold
}

func (c LedgerConfig) probeEvery() int {
	if c.ProbeEvery <= 0 {
		return 8
	}
	return c.ProbeEvery
}

// Ledger tracks verified mismatches per compute unit and drives the
// quarantine state machine:
//
//	clean --K consecutive mismatches--> quarantined
//	quarantined --every Nth Allow--> probe granted
//	probe verified clean --> readmitted
//	probe mismatch --> stays quarantined, probe window restarts
//
// Units are small integer IDs (engine complex 0, SoC worker cores
// 1..N). A nil Ledger allows everything and records nothing.
type Ledger struct {
	mu    sync.Mutex
	cfg   LedgerConfig
	units map[int]*unitState

	mismatches  uint64
	quarantines uint64
	readmits    uint64
}

type unitState struct {
	streak      int
	quarantined bool
	sinceProbe  int
}

// NewLedger returns an empty ledger.
func NewLedger(cfg LedgerConfig) *Ledger {
	return &Ledger{cfg: cfg, units: make(map[int]*unitState)}
}

func (l *Ledger) unit(id int) *unitState {
	u := l.units[id]
	if u == nil {
		u = &unitState{}
		l.units[id] = u
	}
	return u
}

// Mismatch records one verified mismatch against unit id and reports
// whether this mismatch transitioned the unit into quarantine.
func (l *Ledger) Mismatch(id int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mismatches++
	u := l.unit(id)
	u.streak++
	if !u.quarantined && u.streak >= l.cfg.threshold() {
		u.quarantined = true
		u.sinceProbe = 0
		l.quarantines++
		return true
	}
	return false
}

// Verified records one verification success for unit id: the mismatch
// streak resets, and a quarantined unit that just proved itself clean
// on a probe is readmitted. Reports whether a readmission happened.
func (l *Ledger) Verified(id int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.unit(id)
	u.streak = 0
	if u.quarantined {
		u.quarantined = false
		l.readmits++
		return true
	}
	return false
}

// Allow reports whether unit id may execute. Clean units always may; a
// quarantined unit gets one probe every ProbeEvery calls (the half-open
// gate). Callers MUST report the probe's outcome via Verified or
// Mismatch, or the unit stays benched forever.
func (l *Ledger) Allow(id int) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.unit(id)
	if !u.quarantined {
		return true
	}
	u.sinceProbe++
	if u.sinceProbe >= l.cfg.probeEvery() {
		u.sinceProbe = 0
		return true
	}
	return false
}

// Quarantined reports unit id's quarantine state without the probe
// side effects of Allow.
func (l *Ledger) Quarantined(id int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.units[id]
	return u != nil && u.quarantined
}

// Counts returns the lifetime mismatch / quarantine / readmit totals.
func (l *Ledger) Counts() (mismatches, quarantines, readmits uint64) {
	if l == nil {
		return 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mismatches, l.quarantines, l.readmits
}
