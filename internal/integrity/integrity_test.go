package integrity

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSamplerModes(t *testing.T) {
	if NewSampler(VerifyOff, 4).Hit() {
		t.Error("off mode verified")
	}
	full := NewSampler(VerifyFull, 4)
	for i := 0; i < 10; i++ {
		if !full.Hit() {
			t.Fatal("full mode skipped an op")
		}
	}
	s := NewSampler(VerifySampled, 4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Hit() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("sampled 1-in-4: %d hits over 400 ops, want 100", hits)
	}
	var nilS *Sampler
	if nilS.Hit() || nilS.Mode() != VerifyOff {
		t.Error("nil sampler must be inert")
	}
}

func TestSamplerDefaultPeriod(t *testing.T) {
	s := NewSampler(VerifySampled, 0)
	hits := 0
	for i := 0; i < 8 * 10; i++ {
		if s.Hit() {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("default period: %d hits over 80 ops, want 10", hits)
	}
}

func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(VerifySampled, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 200; i++ {
				if s.Hit() {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 100 {
		t.Errorf("concurrent sampled 1-in-8: %d hits over 800 ops, want 100", total)
	}
}

func TestCorruptErrorTyping(t *testing.T) {
	e := &CorruptError{Hop: "fleet", Segment: "s1", Index: -1, Want: 0xdead, Got: 0xbeef}
	if !errors.Is(e, ErrCorrupt) {
		t.Error("CorruptError must match ErrCorrupt")
	}
	wrapped := fmt.Errorf("request failed: %w", e)
	if !errors.Is(wrapped, ErrCorrupt) {
		t.Error("wrapped CorruptError must match ErrCorrupt")
	}
	var ce *CorruptError
	if !errors.As(wrapped, &ce) || ce.Segment != "s1" {
		t.Error("errors.As must recover the segment")
	}
	ref := &CorruptError{Hop: "verify", Segment: "sz3", Index: 3}
	for _, msg := range []string{e.Error(), ref.Error()} {
		if msg == "" {
			t.Error("empty error text")
		}
	}
}

func TestLedgerQuarantineLadder(t *testing.T) {
	l := NewLedger(LedgerConfig{Threshold: 3, ProbeEvery: 4})

	// Below threshold: stays in service, streak resets on success.
	l.Mismatch(0)
	l.Mismatch(0)
	l.Verified(0)
	l.Mismatch(0)
	l.Mismatch(0)
	if l.Quarantined(0) {
		t.Fatal("quarantined below threshold after a reset")
	}
	if !l.Mismatch(0) {
		t.Fatal("third consecutive mismatch must transition to quarantine")
	}
	if !l.Quarantined(0) {
		t.Fatal("not quarantined after threshold")
	}

	// Quarantined: only every 4th Allow is a probe.
	probes := 0
	for i := 0; i < 12; i++ {
		if l.Allow(0) {
			probes++
		}
	}
	if probes != 3 {
		t.Fatalf("probe gate let %d of 12 calls through, want 3", probes)
	}

	// Probe fails: stays quarantined (no double-quarantine transition).
	if l.Mismatch(0) {
		t.Error("mismatch while quarantined must not re-transition")
	}
	if !l.Quarantined(0) {
		t.Fatal("unit left quarantine on a failed probe")
	}

	// Probe succeeds: readmitted and immediately allowed.
	if !l.Verified(0) {
		t.Fatal("verified probe must readmit")
	}
	if l.Quarantined(0) || !l.Allow(0) {
		t.Fatal("readmitted unit must be allowed")
	}

	mm, q, r := l.Counts()
	if mm != 6 || q != 1 || r != 1 {
		t.Errorf("counts = (%d, %d, %d), want (6, 1, 1)", mm, q, r)
	}
}

func TestLedgerPerUnitIsolation(t *testing.T) {
	l := NewLedger(LedgerConfig{Threshold: 2})
	l.Mismatch(1)
	l.Mismatch(1)
	if !l.Quarantined(1) {
		t.Fatal("unit 1 should be quarantined")
	}
	if l.Quarantined(0) || !l.Allow(0) {
		t.Error("unit 0 must be unaffected by unit 1's quarantine")
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	if l.Mismatch(0) || l.Verified(0) || l.Quarantined(0) {
		t.Error("nil ledger must record nothing")
	}
	if !l.Allow(0) {
		t.Error("nil ledger must allow everything")
	}
	if a, b, c := l.Counts(); a+b+c != 0 {
		t.Error("nil ledger counts must be zero")
	}
}

func TestVerifyModeString(t *testing.T) {
	for m, want := range map[VerifyMode]string{
		VerifyOff: "off", VerifySampled: "sampled", VerifyFull: "full", VerifyMode(9): "verify(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}
