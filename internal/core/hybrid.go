package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// The hybrid design implements the extension the paper sketches in
// §V-C.2 ("a prospective hybrid design avenue for exploiting both SoC
// and C-Engine in parallel") and recommends in §VI ("future developments
// could involve various compression designs using the SoC and C-Engine
// to achieve parallel compression and decompression").
//
// The input is split into independently DEFLATE-compressed spans and
// scheduled across the C-Engine and a pool of SoC cores so both finish
// together. The C-Engine receives one large span (its per-job fixed
// latency makes many small jobs uneconomical — an effect the cost model
// exposes); the SoC pool receives one span per core. The wire format is
// self-describing:
//
//	varint chunkCount, then per chunk: varint origLen, varint compLen, body
//
// Virtual time is the parallel makespan: max(C-Engine job time, slowest
// SoC core), which is how the real hardware would overlap.

// AlgoHybrid is the wire identifier of the hybrid chunked-DEFLATE
// design. It extends the paper's Table III (AlgoIDs 1-4).
const AlgoHybrid AlgoID = 5

// DesignHybrid returns the hybrid design descriptor (engine preference
// is advisory; the scheduler always uses everything available).
func DesignHybrid() Design { return Design{Algo: AlgoHybrid, Engine: hwmodel.CEngine} }

// maxHybridChunks bounds the frame's chunk count against corrupt input.
const maxHybridChunks = 1 << 16

type hybridSpan struct {
	offset   int
	orig     []byte
	comp     []byte
	onEngine bool
	err      error
}

// splitHybrid partitions data into an optional engine span plus per-core
// SoC spans, sized so that both resources finish together under the
// calibrated cost model.
func (l *Library) splitHybrid(bd *stats.Breakdown, data []byte, op hwmodel.Op) []hybridSpan {
	gen := l.dev.Generation()
	cores := l.dev.SoC().Cores
	n := len(data)
	// The engine span is only scheduled when the capability exists AND
	// the circuit breaker admits it; with the breaker open the whole
	// input goes to the SoC pool.
	engineOK := l.dev.SupportsCEngine(hwmodel.Deflate, op) && l.engineAllowed(bd)

	engineBytes := 0
	if engineOK && n > 0 {
		ceCost, _ := hwmodel.OpCost(gen, hwmodel.CEngine, hwmodel.Deflate, op, n)
		socCost, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Deflate, op, n)
		// t_ce(f·n) = fixed + f·n/Tce must equal t_soc((1-f)·n) =
		// (1-f)·n/(Tsoc·cores). With costs linear in n this solves to:
		fixed, _ := hwmodel.OpCost(gen, hwmodel.CEngine, hwmodel.Deflate, op, 0)
		ceRate := float64(ceCost-fixed) / float64(n)   // time per byte on engine
		socRate := float64(socCost) / float64(n*cores) // time per byte on pool
		if ceRate+socRate > 0 {
			f := (socRate*float64(n) - float64(fixed)) / ((ceRate + socRate) * float64(n))
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			engineBytes = int(f * float64(n))
		}
	}

	var spans []hybridSpan
	if engineBytes > 0 {
		spans = append(spans, hybridSpan{offset: 0, orig: data[:engineBytes], onEngine: true})
	}
	rest := data[engineBytes:]
	if len(rest) > 0 {
		per := (len(rest) + cores - 1) / cores
		for off := 0; off < len(rest); off += per {
			end := off + per
			if end > len(rest) {
				end = len(rest)
			}
			spans = append(spans, hybridSpan{offset: engineBytes + off, orig: rest[off:end]})
		}
	}
	if len(spans) == 0 {
		spans = []hybridSpan{{offset: 0, orig: data}}
	}
	return spans
}

// hybridMakespan computes the modelled parallel completion time of a
// span schedule.
func (l *Library) hybridMakespan(spans []hybridSpan, op hwmodel.Op) time.Duration {
	gen := l.dev.Generation()
	cores := l.dev.SoC().Cores
	var ceTime time.Duration
	// SoC spans run one per core (the splitter produces ≤ cores spans);
	// makespan on the pool is the slowest single span, unless spans
	// exceed cores, in which case work is evenly divided.
	var socSpans []time.Duration
	for i := range spans {
		size := len(spans[i].orig)
		if op == hwmodel.Decompress {
			// Decompression cost scales with expanded output.
			size = spans[i].expandedLen()
		}
		if spans[i].onEngine {
			d, _ := hwmodel.OpCost(gen, hwmodel.CEngine, hwmodel.Deflate, op, size)
			ceTime += d
		} else {
			d, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Deflate, op, size)
			socSpans = append(socSpans, d)
		}
	}
	var socTime time.Duration
	if len(socSpans) <= cores {
		for _, d := range socSpans {
			if d > socTime {
				socTime = d
			}
		}
	} else {
		var total time.Duration
		for _, d := range socSpans {
			total += d
		}
		socTime = total / time.Duration(cores)
	}
	if ceTime > socTime {
		return ceTime
	}
	return socTime
}

// expandedLen is the uncompressed size of a span (known after decode, or
// the original length during compression).
func (s *hybridSpan) expandedLen() int {
	if s.orig != nil {
		return len(s.orig)
	}
	return 0
}

// compressHybrid splits data and compresses the spans on all available
// hardware in parallel.
func (l *Library) compressHybrid(op *stats.Breakdown, rep *Report, data []byte) ([]byte, error) {
	spans := l.splitHybrid(op, data, hwmodel.Compress)
	var wg sync.WaitGroup
	for i := range spans {
		s := &spans[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.onEngine {
				res := l.dev.CEngine().Run(dpu.Job{
					Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: s.orig,
				})
				// Checksum-verify the engine output: a corrupted span
				// must be recompressed in software, not shipped.
				if res.Err == nil && res.VerifyOutput() {
					s.comp = res.Output
					return
				}
				s.onEngine = false // engine refused or corrupted: software fallback
			}
			s.comp = flate.Compress(s.orig, l.opts.Level)
		}()
	}
	wg.Wait()
	op.Add(stats.PhaseCompress, l.hybridMakespan(spans, hwmodel.Compress))
	l.chargeBufPrep(op, hwmodel.CEngine, len(data))
	rep.Engine = hwmodel.SoC
	for i := range spans {
		if spans[i].onEngine {
			rep.Engine = hwmodel.CEngine
		}
	}
	rep.Fallback = rep.Engine == hwmodel.SoC &&
		!l.dev.SupportsCEngine(hwmodel.Deflate, hwmodel.Compress)

	out := binary.AppendUvarint(nil, uint64(len(spans)))
	for i := range spans {
		out = binary.AppendUvarint(out, uint64(len(spans[i].orig)))
		out = binary.AppendUvarint(out, uint64(len(spans[i].comp)))
		out = append(out, spans[i].comp...)
	}
	return out, nil
}

// decompressHybrid reverses compressHybrid, again in parallel: the
// largest span goes to the C-Engine (when the generation decompresses in
// hardware), the rest to the SoC pool.
func (l *Library) decompressHybrid(op *stats.Breakdown, rep *Report, body []byte, maxOutput int) ([]byte, error) {
	count, n := binary.Uvarint(body)
	if n <= 0 || count == 0 || count > maxHybridChunks {
		return nil, fmt.Errorf("core: corrupt hybrid frame header")
	}
	pos := n
	spans := make([]hybridSpan, count)
	origLens := make([]int, count)
	total := 0
	largest := 0
	for i := range spans {
		orig, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt hybrid span %d origLen", i)
		}
		pos += n
		comp, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt hybrid span %d compLen", i)
		}
		pos += n
		if pos+int(comp) > len(body) {
			return nil, fmt.Errorf("core: hybrid span %d overruns frame", i)
		}
		if total+int(orig) > maxOutput {
			return nil, fmt.Errorf("core: hybrid output exceeds %d bytes", maxOutput)
		}
		spans[i].offset = total
		spans[i].comp = body[pos : pos+int(comp)]
		origLens[i] = int(orig)
		if int(orig) > origLens[largest] {
			largest = i
		}
		total += int(orig)
		pos += int(comp)
	}
	if l.dev.SupportsCEngine(hwmodel.Deflate, hwmodel.Decompress) && l.engineAllowed(op) {
		spans[largest].onEngine = true
	}

	out := make([]byte, total)
	var wg sync.WaitGroup
	for i := range spans {
		s := &spans[i]
		limit := origLens[i] + 64
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dec []byte
			var err error
			if s.onEngine {
				res := l.dev.CEngine().Run(dpu.Job{
					Algo: hwmodel.Deflate, Op: hwmodel.Decompress,
					Input: s.comp, MaxOutput: limit,
				})
				if res.Err == nil && res.VerifyOutput() {
					dec = res.Output
				} else {
					// Engine failure or corrupted output: redo the span
					// in software so the frame stays byte-exact.
					s.onEngine = false
					dec, err = flate.DecompressLimit(s.comp, limit)
				}
			} else {
				dec, err = flate.DecompressLimit(s.comp, limit)
			}
			if err != nil {
				s.err = err
				return
			}
			s.orig = dec
			copy(out[s.offset:], dec)
		}()
	}
	wg.Wait()
	for i := range spans {
		if spans[i].err != nil {
			return nil, spans[i].err
		}
		if len(spans[i].orig) != origLens[i] {
			return nil, fmt.Errorf("core: hybrid span %d decoded %d bytes, declared %d",
				i, len(spans[i].orig), origLens[i])
		}
	}
	op.Add(stats.PhaseDecompress, l.hybridMakespan(spans, hwmodel.Decompress))
	rep.Engine = hwmodel.SoC
	for i := range spans {
		if spans[i].onEngine {
			rep.Engine = hwmodel.CEngine
		}
	}
	rep.Fallback = rep.Engine == hwmodel.SoC &&
		!l.dev.SupportsCEngine(hwmodel.Deflate, hwmodel.Decompress)
	return out, nil
}
