package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

func newLib(t *testing.T, gen hwmodel.Generation) *Library {
	t.Helper()
	lib, err := Init(Options{Generation: gen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Finalize)
	return lib
}

func textData(n int) []byte {
	unit := []byte("<record id=\"42\"><field>pedal compresses messages</field></record>\n")
	return bytes.Repeat(unit, n/len(unit)+1)[:n]
}

func floatData(n int) []byte {
	vals := make([]float64, n/8)
	v := 0.0
	rng := rand.New(rand.NewSource(11))
	for i := range vals {
		v += math.Sin(float64(i)*0.01)*0.1 + rng.NormFloat64()*0.001
		vals[i] = v
	}
	out := make([]byte, len(vals)*8)
	for i, f := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}

func TestHeaderFormat(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(4096)
	msg, _, err := lib.Compress(Design{AlgoDeflate, hwmodel.SoC}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if msg[0] != 0xFF || msg[2] != 0xFF {
		t.Fatalf("header indicators wrong: % x", msg[:3])
	}
	if AlgoID(msg[1]) != AlgoDeflate {
		t.Fatalf("AlgoID byte = %d", msg[1])
	}
	algo, body, err := ParseHeader(msg)
	if err != nil || algo != AlgoDeflate {
		t.Fatalf("ParseHeader: %v %v", algo, err)
	}
	if len(body) != len(msg)-3 {
		t.Fatal("body length wrong")
	}
}

func TestUncompressedPassthrough(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	raw := []byte("no pedal header here")
	out, rep, err := lib.Decompress(hwmodel.SoC, TypeBytes, raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("passthrough altered data")
	}
	if rep.Virtual != 0 {
		t.Fatal("passthrough should cost nothing")
	}
}

func TestAllDesignsRoundTripBothGenerations(t *testing.T) {
	lossless := textData(200000)
	lossy := floatData(160000)
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib := newLib(t, gen)
		for _, d := range Designs() {
			dt := TypeBytes
			data := lossless
			if d.Algo == AlgoSZ3 {
				dt = TypeFloat64
				data = lossy
			}
			msg, crep, err := lib.Compress(d, dt, data)
			if err != nil {
				t.Fatalf("%v %v compress: %v", gen, d, err)
			}
			out, drep, err := lib.Decompress(d.Engine, dt, msg, len(data)+64)
			if err != nil {
				t.Fatalf("%v %v decompress: %v", gen, d, err)
			}
			if d.Algo == AlgoSZ3 {
				// Lossy: verify error bound, not equality.
				checkFloatBound(t, data, out, 1e-4, gen.String()+" "+d.String())
			} else if !bytes.Equal(out, data) {
				t.Fatalf("%v %v: round trip mismatch", gen, d)
			}
			if crep.Virtual <= 0 || drep.Virtual <= 0 {
				t.Fatalf("%v %v: missing virtual timing", gen, d)
			}
			lib.Release(msg)
		}
	}
}

func checkFloatBound(t *testing.T, orig, recon []byte, eb float64, label string) {
	t.Helper()
	if len(orig) != len(recon) {
		t.Fatalf("%s: %d bytes vs %d", label, len(recon), len(orig))
	}
	for i := 0; i+8 <= len(orig); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(orig[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(recon[i:]))
		if math.Abs(a-b) > eb*(1+1e-9) {
			t.Fatalf("%s: element %d error %g > %g", label, i/8, math.Abs(a-b), eb)
		}
	}
}

// Table III: which designs execute without fallback on which generation.
func TestTable3PedalDesignMatrix(t *testing.T) {
	cases := []struct {
		gen          hwmodel.Generation
		d            Design
		wantFallback bool
	}{
		// BF2 C-Engine: DEFLATE, zlib, SZ3 compress natively/hybrid.
		{hwmodel.BlueField2, Design{AlgoDeflate, hwmodel.CEngine}, false},
		{hwmodel.BlueField2, Design{AlgoZlib, hwmodel.CEngine}, false},
		{hwmodel.BlueField2, Design{AlgoSZ3, hwmodel.CEngine}, false},
		// LZ4 has no C-Engine compression anywhere.
		{hwmodel.BlueField2, Design{AlgoLZ4, hwmodel.CEngine}, true},
		{hwmodel.BlueField3, Design{AlgoLZ4, hwmodel.CEngine}, true},
		// BF3 C-Engine compresses nothing.
		{hwmodel.BlueField3, Design{AlgoDeflate, hwmodel.CEngine}, true},
		{hwmodel.BlueField3, Design{AlgoZlib, hwmodel.CEngine}, true},
		{hwmodel.BlueField3, Design{AlgoSZ3, hwmodel.CEngine}, true},
		// SoC designs never fall back.
		{hwmodel.BlueField2, Design{AlgoDeflate, hwmodel.SoC}, false},
		{hwmodel.BlueField3, Design{AlgoZlib, hwmodel.SoC}, false},
	}
	for _, c := range cases {
		lib := newLib(t, c.gen)
		dt := TypeBytes
		data := textData(65536)
		if c.d.Algo == AlgoSZ3 {
			dt = TypeFloat64
			data = floatData(65536)
		}
		_, rep, err := lib.Compress(c.d, dt, data)
		if err != nil {
			t.Fatalf("%v %v: %v", c.gen, c.d, err)
		}
		if rep.Fallback != c.wantFallback {
			t.Errorf("%v %v: fallback = %v, want %v", c.gen, c.d, rep.Fallback, c.wantFallback)
		}
		if got := SupportsCompress(c.gen, c.d); got == c.wantFallback {
			t.Errorf("SupportsCompress(%v, %v) = %v inconsistent with fallback %v",
				c.gen, c.d, got, c.wantFallback)
		}
		lib.Finalize()
	}
}

func TestDecompressDesignMatrix(t *testing.T) {
	// BF3 C-Engine decompression works for DEFLATE/zlib/SZ3/LZ4; BF2's for
	// all but LZ4.
	data := textData(100000)
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib := newLib(t, gen)
		for _, algo := range []AlgoID{AlgoDeflate, AlgoZlib, AlgoLZ4} {
			msg, _, err := lib.Compress(Design{algo, hwmodel.SoC}, TypeBytes, data)
			if err != nil {
				t.Fatal(err)
			}
			out, rep, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg, len(data)+64)
			if err != nil {
				t.Fatalf("%v %v: %v", gen, algo, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("%v %v: mismatch", gen, algo)
			}
			wantFallback := !SupportsDecompress(gen, Design{algo, hwmodel.CEngine})
			if rep.Fallback != wantFallback {
				t.Errorf("%v %v: decompress fallback=%v want %v", gen, algo, rep.Fallback, wantFallback)
			}
		}
		lib.Finalize()
	}
}

func TestHybridZlibInteroperable(t *testing.T) {
	// A hybrid (C-Engine body) zlib message must decode on the plain SoC
	// path and vice versa: the wire format is unchanged.
	data := textData(80000)
	bf2 := newLib(t, hwmodel.BlueField2)
	msgHybrid, rep, err := bf2.Compress(Design{AlgoZlib, hwmodel.CEngine}, TypeBytes, data)
	if err != nil || rep.Engine != hwmodel.CEngine {
		t.Fatalf("hybrid compress: %v (engine %v)", err, rep.Engine)
	}
	out, _, err := bf2.Decompress(hwmodel.SoC, TypeBytes, msgHybrid, len(data)+64)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("SoC decode of hybrid zlib: %v", err)
	}
	msgSoC, _, err := bf2.Compress(Design{AlgoZlib, hwmodel.SoC}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err = bf2.Decompress(hwmodel.CEngine, TypeBytes, msgSoC, len(data)+64)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("hybrid decode of SoC zlib: %v", err)
	}
}

func TestBaselinePaysInitPerOp(t *testing.T) {
	data := textData(1 << 20)
	base, err := Init(Options{Generation: hwmodel.BlueField2, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Finalize()
	ped := newLib(t, hwmodel.BlueField2)

	d := Design{AlgoDeflate, hwmodel.CEngine}
	_, repBase, err := base.Compress(d, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	_, repPedal, err := ped.Compress(d, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if repBase.Phases[stats.PhaseDOCAInit] == 0 {
		t.Fatal("baseline did not pay DOCA init")
	}
	if repPedal.Phases[stats.PhaseDOCAInit] != 0 {
		t.Fatal("PEDAL paid DOCA init on the message path")
	}
	speedup := float64(repBase.Virtual) / float64(repPedal.Virtual)
	if speedup < 5 {
		t.Fatalf("PEDAL speedup over baseline = %.1f, expected large (paper: up to 88x)", speedup)
	}
}

func TestCompressionRatiosSane(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(1 << 20)
	var deflateRatio, lz4Ratio float64
	for _, algo := range []AlgoID{AlgoDeflate, AlgoLZ4, AlgoZlib} {
		_, rep, err := lib.Compress(Design{algo, hwmodel.SoC}, TypeBytes, data)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ratio() < 1.5 {
			t.Errorf("%v ratio %.2f too low for structured text", algo, rep.Ratio())
		}
		switch algo {
		case AlgoDeflate:
			deflateRatio = rep.Ratio()
		case AlgoLZ4:
			lz4Ratio = rep.Ratio()
		}
	}
	// Table V(a): DEFLATE ratio consistently above LZ4's.
	if deflateRatio <= lz4Ratio {
		t.Errorf("DEFLATE ratio %.2f not above LZ4 %.2f", deflateRatio, lz4Ratio)
	}
}

func TestSZ3RequiresFloatType(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	if _, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.SoC}, TypeBytes, textData(1024)); err == nil {
		t.Fatal("SZ3 accepted byte data")
	}
	if _, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.SoC}, TypeFloat64, textData(1025)); err == nil {
		t.Fatal("SZ3 accepted misaligned float64 buffer")
	}
}

func TestSZ3Float32(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.01))
	}
	data := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(v))
	}
	msg, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.CEngine}, TypeFloat32, data)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := lib.Decompress(hwmodel.CEngine, TypeFloat32, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		if math.Abs(float64(got-vals[i])) > 1e-4*(1+1e-6) {
			t.Fatalf("element %d error %g", i, math.Abs(float64(got-vals[i])))
		}
	}
}

func TestFinalizedLibraryRejectsOps(t *testing.T) {
	lib, err := Init(Options{})
	if err != nil {
		t.Fatal(err)
	}
	lib.Finalize()
	if _, _, err := lib.Compress(Design{AlgoDeflate, hwmodel.SoC}, TypeBytes, []byte("x")); !errors.Is(err, ErrFinalized) {
		t.Fatalf("want ErrFinalized, got %v", err)
	}
	lib.Finalize() // idempotent
}

func TestSmartNICModeRejected(t *testing.T) {
	if _, err := Init(Options{Mode: 2}); err == nil {
		t.Fatal("SmartNIC mode accepted; PEDAL requires Separated Host")
	}
}

func TestPoolReuseAcrossMessages(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(64 << 10)
	for i := 0; i < 10; i++ {
		msg, _, err := lib.Compress(Design{AlgoDeflate, hwmodel.CEngine}, TypeBytes, data)
		if err != nil {
			t.Fatal(err)
		}
		lib.Release(msg)
	}
	hits, misses := lib.PoolStats()
	if hits == 0 {
		t.Fatalf("no pool hits after 10 messages (hits=%d misses=%d)", hits, misses)
	}
	if misses > hits {
		t.Fatalf("pool mostly missing: hits=%d misses=%d", hits, misses)
	}
}

func TestCorruptBodySurfacesError(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(4096)
	msg, _, err := lib.Compress(Design{AlgoDeflate, hwmodel.SoC}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	msg[10] ^= 0xFF
	if _, _, err := lib.Decompress(hwmodel.SoC, TypeBytes, msg, len(data)+64); err == nil {
		// A flipped bit may rarely still inflate; verify content then.
		out, _, _ := lib.Decompress(hwmodel.SoC, TypeBytes, msg, len(data)+64)
		if bytes.Equal(out, data) {
			t.Skip("flip landed in padding")
		}
		t.Fatal("corrupt body decoded to wrong data without error")
	}
}

func TestDesignStrings(t *testing.T) {
	d := Design{AlgoDeflate, hwmodel.SoC}
	if d.String() != "SoC_DEFLATE" {
		t.Errorf("got %q", d.String())
	}
	d = Design{AlgoZlib, hwmodel.CEngine}
	if d.String() != "C-Engine_zlib" {
		t.Errorf("got %q", d.String())
	}
	if !AlgoSZ3.Lossy() || AlgoDeflate.Lossy() {
		t.Error("Lossy() wrong")
	}
}

func TestLosslessDesignsMatchFig10Labels(t *testing.T) {
	ds := LosslessDesigns()
	want := []string{"SoC_DEFLATE", "C-Engine_DEFLATE", "SoC_LZ4", "C-Engine_LZ4", "SoC_zlib", "C-Engine_zlib"}
	if len(ds) != len(want) {
		t.Fatalf("%d designs", len(ds))
	}
	for i, d := range ds {
		if d.String() != want[i] {
			t.Errorf("design %d = %s, want %s", i, d, want[i])
		}
	}
}

func TestConcurrentCompress(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(32 << 10)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			msg, _, err := lib.Compress(Design{AlgoDeflate, hwmodel.CEngine}, TypeBytes, data)
			if err != nil {
				done <- err
				return
			}
			out, _, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg, len(data)+64)
			if err == nil && !bytes.Equal(out, data) {
				err = errors.New("mismatch")
			}
			done <- err
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestVirtualTimingShapeCEngineFaster(t *testing.T) {
	// On BF2 the C-Engine design must be dramatically faster than the SoC
	// design for DEFLATE (paper Fig. 8: 101.8x for compression).
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(5 << 20)
	_, socRep, err := lib.Compress(Design{AlgoDeflate, hwmodel.SoC}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	_, ceRep, err := lib.Compress(Design{AlgoDeflate, hwmodel.CEngine}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(socRep.Virtual) / float64(ceRep.Virtual)
	if ratio < 30 {
		t.Fatalf("C-Engine speedup = %.1f, want large (paper ≈101.8 for pure op)", ratio)
	}
}
