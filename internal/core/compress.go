package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pedal/internal/checksum"
	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/lz4"
	"pedal/internal/stats"
	"pedal/internal/sz3"
	"pedal/internal/zlibfmt"
)

// Compress is PEDAL_compress: it compresses data with the selected design
// and returns a wire message consisting of the 3-byte PEDAL header
// followed by the compressed payload. The datatype parameter matters for
// the lossy design (SZ3 requires float data, paper Listing 1); lossless
// designs accept any bytes.
//
// When the preferred engine lacks the operation on this generation,
// Compress transparently falls back to the SoC — the paper's §III-D
// "intelligently fall back to SoC-based compression designs ... avoiding
// software failures" — and reports the fallback.
func (l *Library) Compress(d Design, dt DataType, data []byte) ([]byte, Report, error) {
	return l.CompressContext(context.Background(), d, dt, data)
}

// CompressContext is Compress bounded by a caller deadline: the
// operation checkpoints ctx on entry, inside the engine submit/wait
// path, and before message assembly. Expired work is abandoned with a
// typed dpu.ErrDeadline, pooled staging buffers are released, and the
// abandonment is counted and traced. A background context takes exactly
// the classic Compress path.
func (l *Library) CompressContext(ctx context.Context, d Design, dt DataType, data []byte) ([]byte, Report, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, Report{}, ErrFinalized
	}
	ctx, cancel := l.withOpDeadline(ctx)
	defer cancel()
	defer l.setOpCtx(ctx)()
	op, old := l.beginOp()
	defer l.endOp(op, old)

	rep := Report{Design: d, Engine: d.Engine, InBytes: len(data)}
	if err := l.checkDeadline(op, "compress"); err != nil {
		return nil, rep, err
	}
	var payload []byte
	var err error
	switch d.Algo {
	case AlgoDeflate:
		payload, err = l.compressDeflate(op, d, &rep, data)
	case AlgoZlib:
		payload, err = l.compressZlib(op, d, &rep, data)
	case AlgoLZ4:
		payload, err = l.compressLZ4(op, d, &rep, data)
	case AlgoSZ3:
		payload, err = l.compressSZ3(op, d, &rep, dt, data)
	case AlgoHybrid:
		payload, err = l.compressHybrid(op, &rep, data)
	default:
		err = fmt.Errorf("core: unknown algorithm %v", d.Algo)
	}
	if err != nil {
		return nil, rep, err
	}
	// Deadline checkpoint between compression and verification/assembly:
	// a caller that gave up mid-compression gets its typed abandonment
	// now, with the payload staging buffer released rather than leaked.
	if err := l.checkDeadline(op, "compress"); err != nil {
		l.pool.Put(payload)
		return nil, rep, err
	}
	// Compute fault domain: software-produced payloads get their SDC
	// injection here (the engine injects internally, pre-checksum); then
	// the sampler decides whether this operation decode-verifies. A
	// quarantined engine's output is always verified — those are the
	// half-open probes that earn readmission.
	if rep.Engine != hwmodel.CEngine {
		l.injectSDC(payload)
	}
	if l.sampler.Hit() || (rep.Engine == hwmodel.CEngine && l.dev.CEngine().Quarantined()) {
		payload, err = l.verifyCompressed(op, d, &rep, dt, data, payload)
		if err != nil {
			return nil, rep, err
		}
	}
	msg := l.getBuf(headerLen + len(payload))
	putHeader(msg, d.Algo)
	copy(msg[headerLen:], payload)
	rep.OutBytes = len(payload)
	// The payload staging buffer is dead after the copy; recycling it
	// keeps the steady-state compress path allocation-free.
	l.pool.Put(payload)
	// Source-side CRC: computed once here so every downstream hop —
	// pipeline descriptor, transport frame, fleet response, checkpoint
	// shard — can carry and check it instead of recomputing or trusting.
	rep.MsgCRC = checksum.CRC32(msg)
	rep.Phases = op.Snapshot()
	rep.Counts = op.Counts()
	rep.Virtual = op.Total()
	return msg, rep, nil
}

// engineCompressDeflate runs DEFLATE compression on the preferred
// hardware, handling staging, mapping and fallback; it is shared by the
// DEFLATE, zlib and SZ3 hybrid paths.
func (l *Library) engineCompressDeflate(op *stats.Breakdown, rep *Report, data []byte) ([]byte, error) {
	supported := l.dev.SupportsCEngine(hwmodel.Deflate, hwmodel.Compress)
	var engineErr error
	if supported && l.engineAllowed(op) {
		staging, release := l.stage(op, data)
		defer release()
		res, err := l.ctx.SubmitCtx(l.curOpCtx(), hwmodel.Deflate, hwmodel.Compress, staging, 0)
		l.noteEngineResult(op, err)
		if err == nil {
			rep.Engine = hwmodel.CEngine
			return res.Output, nil
		}
		if cerr := l.checkDeadline(op, "engine-compress"); cerr != nil {
			// The engine attempt died with the caller's deadline: abandon
			// instead of burning the SoC fallback on unwanted work.
			return nil, cerr
		}
		// Hardware failed at runtime: degrade to the SoC below.
		engineErr = err
	}
	// SoC fallback: static for a missing capability (BlueField-3's
	// C-Engine cannot compress, §V-C), dynamic for a failing or
	// breaker-opened engine.
	rep.Engine = hwmodel.SoC
	rep.Fallback = true
	rep.Degraded = supported
	if errors.Is(engineErr, dpu.ErrEngineLost) {
		// The journaled job was lost to a stall/wedge; this SoC pass is
		// its deterministic replay (same input, algo, op).
		op.Inc(stats.CounterJobsReplayed)
	}
	l.chargeSoCBufPrep(op, len(data))
	out := flate.AppendCompress(l.pool.GetCap(flate.CompressBound(len(data))), data, l.opts.Level)
	if _, err := l.ctx.SoCRun(hwmodel.Deflate, hwmodel.Compress, len(data)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) compressDeflate(op *stats.Breakdown, d Design, rep *Report, data []byte) ([]byte, error) {
	if d.Engine == hwmodel.CEngine {
		return l.engineCompressDeflate(op, rep, data)
	}
	l.chargeSoCBufPrep(op, len(data))
	out := flate.AppendCompress(l.pool.GetCap(flate.CompressBound(len(data))), data, l.opts.Level)
	if _, err := l.ctx.SoCRun(hwmodel.Deflate, hwmodel.Compress, len(data)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) compressZlib(op *stats.Breakdown, d Design, rep *Report, data []byte) ([]byte, error) {
	if d.Engine == hwmodel.CEngine {
		// PEDAL's hybrid zlib (§III-C.1, Fig. 3): the DEFLATE body runs
		// on the C-Engine while the SoC computes the RFC 1950 header and
		// Adler-32 trailer.
		body, err := l.engineCompressDeflate(op, rep, data)
		if err != nil {
			return nil, err
		}
		op.Add(stats.PhaseCompress, hwmodel.ZlibTrailerCost(l.dev.Generation(), len(data)))
		return zlibfmt.Assemble(l.opts.Level, body, data), nil
	}
	l.chargeSoCBufPrep(op, len(data))
	out := zlibfmt.Compress(data, l.opts.Level)
	if _, err := l.ctx.SoCRun(hwmodel.Zlib, hwmodel.Compress, len(data)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) compressLZ4(op *stats.Breakdown, d Design, rep *Report, data []byte) ([]byte, error) {
	// No BlueField generation compresses LZ4 in hardware (Table II);
	// a C-Engine preference always relegates to the SoC (§V-D: "BlueField-2,
	// with its lack of support for LZ4 on its C-Engine, consequently
	// relegates LZ4 compression to the SoC core").
	if d.Engine == hwmodel.CEngine {
		rep.Engine = hwmodel.SoC
		rep.Fallback = true
	}
	l.chargeSoCBufPrep(op, len(data))
	out := lz4.AppendCompress(l.pool.GetCap(lz4.CompressBound(len(data))), data)
	if _, err := l.ctx.SoCRun(hwmodel.LZ4, hwmodel.Compress, len(data)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) compressSZ3(op *stats.Breakdown, d Design, rep *Report, dt DataType, data []byte) ([]byte, error) {
	vals, err := bytesToFloats(dt, data)
	if err != nil {
		return nil, err
	}
	cfg := sz3.Config{
		ErrorBound: l.opts.ErrorBound,
		Mode:       l.opts.SZ3Mode,
		Predictor:  l.opts.SZ3Predictor,
		Dims:       l.opts.SZ3Dims,
	}
	l.chargeSoCBufPrep(op, len(data))
	// The predict+quantize+encode core always runs on the SoC; only the
	// lossless backend stage is offloadable (§III-C.2, Fig. 4).
	if _, err := l.ctx.SoCRun(hwmodel.SZ3Core, hwmodel.Compress, len(data)); err != nil {
		return nil, err
	}
	if d.Engine == hwmodel.CEngine {
		// PEDAL-optimised SZ3: produce the unwrapped core stream, then run
		// the DEFLATE backend on the C-Engine (SoC fallback on BF3).
		cfg.Backend = sz3.BackendNone
		raw, err := compressSZ3Typed(dt, vals, data, cfg)
		if err != nil {
			return nil, err
		}
		// Unwrap the container so only the core stream feeds the backend;
		// the receiver rebuilds an equivalent container around it.
		_, corePayload, err := sz3.SplitContainer(raw)
		if err != nil {
			return nil, err
		}
		subRep := Report{}
		body, err := l.engineCompressDeflate(op, &subRep, corePayload)
		if err != nil {
			return nil, err
		}
		rep.Engine = subRep.Engine
		rep.Fallback = subRep.Fallback
		rep.Degraded = subRep.Degraded
		return sz3.BuildContainer(sz3.BackendDeflate, body), nil
	}
	// SoC design: SZ3 with its fast built-in backend (fastlz standing in
	// for zstd).
	cfg.Backend = sz3.BackendFastLZ
	out, err := compressSZ3Typed(dt, vals, data, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := l.ctx.SoCRun(hwmodel.FastLZ, hwmodel.Compress, estimateCorePayload(len(data))); err != nil {
		return nil, err
	}
	return out, nil
}

// compressSZ3Typed dispatches to the typed SZ3 entry point.
func compressSZ3Typed(dt DataType, vals []float64, raw []byte, cfg sz3.Config) ([]byte, error) {
	if dt == TypeFloat32 {
		f32 := make([]float32, len(vals))
		for i, v := range vals {
			f32[i] = float32(v)
		}
		return sz3.CompressFloat32(f32, cfg)
	}
	return sz3.CompressFloat64(vals, cfg)
}

// estimateCorePayload approximates the size of SZ3's entropy-coded core
// stream for backend cost accounting (≈25% of the input for the paper's
// datasets; the real size is used for the data, this only prices the
// virtual backend stage).
func estimateCorePayload(n int) int { return n / 4 }

// stage copies data into a pre-mapped pool buffer for C-Engine
// submission. In PEDAL mode the mapping was paid at Init and only a
// memcpy is charged; in baseline mode the full allocation+mapping cost
// recurs per message.
func (l *Library) stage(op *stats.Breakdown, data []byte) ([]byte, func()) {
	staging := l.getBuf(len(data))
	copy(staging, data)
	if l.opts.Baseline {
		op.Add(stats.PhaseBufPrep, hwmodel.BufPrepCost(l.dev.Generation(), hwmodel.CEngine, len(data)))
	} else {
		op.Add(stats.PhaseBufPrep, hwmodel.MemcpyCost(l.dev.Generation(), len(data)))
	}
	_ = l.ctx.RegisterPrewarmed(staging)
	return staging, func() {
		l.ctx.Unmap(staging)
		l.pool.Put(staging)
	}
}

// chargeSoCBufPrep charges SoC-side buffer acquisition: free at steady
// state under PEDAL (pooled), a real allocation in baseline mode.
func (l *Library) chargeSoCBufPrep(op *stats.Breakdown, n int) {
	if l.opts.Baseline {
		op.Add(stats.PhaseBufPrep, hwmodel.BufPrepCost(l.dev.Generation(), hwmodel.SoC, n))
	}
}

// bytesToFloats reinterprets raw little-endian bytes as float values.
func bytesToFloats(dt DataType, data []byte) ([]float64, error) {
	switch dt {
	case TypeFloat32:
		if len(data)%4 != 0 {
			return nil, fmt.Errorf("core: float32 buffer length %d not a multiple of 4", len(data))
		}
		out := make([]float64, len(data)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:])))
		}
		return out, nil
	case TypeFloat64:
		if len(data)%8 != 0 {
			return nil, fmt.Errorf("core: float64 buffer length %d not a multiple of 8", len(data))
		}
		out := make([]float64, len(data)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: SZ3 requires float32 or float64 data, got %v", dt)
	}
}

// floatsToBytes is the inverse of bytesToFloats.
func floatsToBytes(dt DataType, vals []float64) []byte {
	if dt == TypeFloat32 {
		out := make([]byte, len(vals)*4)
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
		}
		return out
	}
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}
