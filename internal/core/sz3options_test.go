package core

import (
	"encoding/binary"
	"math"
	"testing"

	"pedal/internal/hwmodel"
	"pedal/internal/sz3"
)

func smoothField2D(nx, ny int) []byte {
	out := make([]byte, nx*ny*8)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := math.Sin(float64(i)*0.05) * math.Cos(float64(j)*0.03)
			binary.LittleEndian.PutUint64(out[(i*ny+j)*8:], math.Float64bits(v))
		}
	}
	return out
}

func TestSZ3DimsThroughPedal(t *testing.T) {
	lib, err := Init(Options{
		Generation: hwmodel.BlueField2,
		SZ3Dims:    []int{100, 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	data := smoothField2D(100, 200)
	msg, rep, err := lib.Compress(Design{AlgoSZ3, hwmodel.SoC}, TypeFloat64, data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() < 5 {
		t.Fatalf("2-D smooth field ratio %.2f too low; dims not exploited", rep.Ratio())
	}
	out, _, err := lib.Decompress(hwmodel.SoC, TypeFloat64, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	checkFloatBound(t, data, out, 1e-4, "2D through PEDAL")
}

func TestSZ3DimsMismatchRejected(t *testing.T) {
	lib, err := Init(Options{SZ3Dims: []int{999, 999}})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	if _, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.SoC}, TypeFloat64, smoothField2D(10, 10)); err == nil {
		t.Fatal("dims/product mismatch accepted")
	}
}

func TestSZ3InterpolationThroughPedal(t *testing.T) {
	lib, err := Init(Options{SZ3Predictor: sz3.PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	data := floatData(80000)
	msg, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.CEngine}, TypeFloat64, data)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := lib.Decompress(hwmodel.CEngine, TypeFloat64, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	checkFloatBound(t, data, out, 1e-4, "interp through PEDAL")
}

func TestSZ3RelativeModeThroughPedal(t *testing.T) {
	lib, err := Init(Options{ErrorBound: 1e-3, SZ3Mode: sz3.BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	data := floatData(40000)
	msg, _, err := lib.Compress(Design{AlgoSZ3, hwmodel.SoC}, TypeFloat64, data)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := lib.Decompress(hwmodel.SoC, TypeFloat64, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve the equivalent absolute bound for verification.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i+8 <= len(data); i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	checkFloatBound(t, data, out, 1e-3*(hi-lo), "REL through PEDAL")
}
