package core

import (
	"context"
	"errors"
	"fmt"

	"pedal/internal/checksum"
	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/lz4"
	"pedal/internal/stats"
	"pedal/internal/sz3"
	"pedal/internal/zlibfmt"
)

// Decompress is PEDAL_decompress: it parses the PEDAL header of a
// received message, selects the matching decompression design, and
// returns the original data. engine states the preferred hardware;
// unsupported paths fall back to the SoC with the fallback recorded in
// the report.
//
// maxOutput bounds the decompressed size (the receiver's user buffer
// capacity in the MPI co-design); pass 0 for a generous default.
//
// A message without a PEDAL header is an uncompressed payload by
// protocol; it is returned verbatim with a zero-cost report.
func (l *Library) Decompress(engine hwmodel.Engine, dt DataType, msg []byte, maxOutput int) ([]byte, Report, error) {
	return l.DecompressContext(context.Background(), engine, dt, msg, maxOutput)
}

// DecompressContext is Decompress bounded by a caller deadline: entry
// and engine submit/wait checkpoints abandon expired work with a typed
// dpu.ErrDeadline (counted and traced as deadline_abandoned). A
// background context takes exactly the classic Decompress path.
func (l *Library) DecompressContext(ctx context.Context, engine hwmodel.Engine, dt DataType, msg []byte, maxOutput int) ([]byte, Report, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, Report{}, ErrFinalized
	}
	algo, body, err := ParseHeader(msg)
	if err != nil {
		// Uncompressed passthrough (paper Fig. 5: the indicators tell the
		// receiver whether the data is compressed at all).
		return msg, Report{Engine: engine, InBytes: len(msg), OutBytes: len(msg)}, nil
	}
	if maxOutput <= 0 {
		maxOutput = 1 << 30
	}
	octx, cancel := l.withOpDeadline(ctx)
	defer cancel()
	defer l.setOpCtx(octx)()
	op, old := l.beginOp()
	defer l.endOp(op, old)

	d := Design{Algo: algo, Engine: engine}
	rep := Report{Design: d, Engine: engine, InBytes: len(body)}
	if err := l.checkDeadline(op, "decompress"); err != nil {
		return nil, rep, err
	}
	var out []byte
	switch algo {
	case AlgoDeflate:
		out, err = l.decompressDeflate(op, &rep, body, maxOutput)
	case AlgoZlib:
		out, err = l.decompressZlib(op, &rep, body, maxOutput)
	case AlgoLZ4:
		out, err = l.decompressLZ4(op, &rep, body, maxOutput)
	case AlgoSZ3:
		out, err = l.decompressSZ3(op, &rep, dt, body, maxOutput)
	case AlgoHybrid:
		out, err = l.decompressHybrid(op, &rep, body, maxOutput)
	case AlgoPipelined:
		out, err = l.decompressPipelined(op, &rep, body, maxOutput)
	default:
		err = fmt.Errorf("core: unknown AlgoID %d", algo)
	}
	if err != nil {
		return nil, rep, err
	}
	rep.OutBytes = len(out)
	// Expanded-output CRC for hop carrying (mirrors Compress.MsgCRC).
	rep.MsgCRC = checksum.CRC32(out)
	rep.Phases = op.Snapshot()
	rep.Counts = op.Counts()
	rep.Virtual = op.Total()
	return out, rep, nil
}

// engineDecompress runs a raw DEFLATE or LZ4-frame decompression on the
// preferred engine with SoC fallback.
func (l *Library) engineDecompress(op *stats.Breakdown, rep *Report, algo hwmodel.Algo, body []byte, maxOutput int) ([]byte, error) {
	supported := rep.Engine == hwmodel.CEngine && l.dev.SupportsCEngine(algo, hwmodel.Decompress)
	var engineErr error
	if supported && l.engineAllowed(op) {
		staging, release := l.stage(op, body)
		defer release()
		res, err := l.ctx.SubmitCtx(l.curOpCtx(), algo, hwmodel.Decompress, staging, maxOutput)
		l.noteEngineResult(op, err)
		if err == nil {
			rep.Engine = hwmodel.CEngine
			return res.Output, nil
		}
		if cerr := l.checkDeadline(op, "engine-decompress"); cerr != nil {
			return nil, cerr
		}
		engineErr = err
	}
	if rep.Engine == hwmodel.CEngine {
		rep.Engine = hwmodel.SoC
		rep.Fallback = true
		rep.Degraded = supported
	}
	if errors.Is(engineErr, dpu.ErrEngineLost) {
		// Journal replay: the lost engine job re-executes below on the
		// SoC from the same input.
		op.Inc(stats.CounterJobsReplayed)
	}
	l.chargeSoCBufPrep(op, maxOutput)
	var out []byte
	var err error
	switch algo {
	case hwmodel.Deflate:
		out, err = flate.DecompressLimit(body, maxOutput)
	case hwmodel.LZ4:
		out, err = lz4.DecompressLimit(body, maxOutput)
	default:
		return nil, fmt.Errorf("core: engineDecompress does not handle %v", algo)
	}
	if err != nil {
		return nil, err
	}
	// Software decompression time also scales with the expanded output.
	if _, err := l.ctx.SoCRun(algo, hwmodel.Decompress, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) decompressDeflate(op *stats.Breakdown, rep *Report, body []byte, maxOutput int) ([]byte, error) {
	return l.engineDecompress(op, rep, hwmodel.Deflate, body, maxOutput)
}

func (l *Library) decompressZlib(op *stats.Breakdown, rep *Report, body []byte, maxOutput int) ([]byte, error) {
	if rep.Engine == hwmodel.CEngine {
		// Hybrid: strip the RFC 1950 framing on the SoC, inflate the body
		// on the C-Engine, verify the Adler-32 trailer on the SoC.
		deflateBody, err := zlibfmt.Body(body)
		if err != nil {
			return nil, err
		}
		out, err := l.engineDecompress(op, rep, hwmodel.Deflate, deflateBody, maxOutput)
		if err != nil {
			return nil, err
		}
		op.Add(stats.PhaseDecompress, hwmodel.ZlibTrailerCost(l.dev.Generation(), len(out)))
		if err := zlibfmt.VerifyTrailer(body, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	l.chargeSoCBufPrep(op, maxOutput)
	out, err := zlibfmt.DecompressLimit(body, maxOutput)
	if err != nil {
		return nil, err
	}
	if _, err := l.ctx.SoCRun(hwmodel.Zlib, hwmodel.Decompress, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Library) decompressLZ4(op *stats.Breakdown, rep *Report, body []byte, maxOutput int) ([]byte, error) {
	return l.engineDecompress(op, rep, hwmodel.LZ4, body, maxOutput)
}

func (l *Library) decompressSZ3(op *stats.Breakdown, rep *Report, dt DataType, body []byte, maxOutput int) ([]byte, error) {
	backend, inner, err := sz3.SplitContainer(body)
	if err != nil {
		return nil, err
	}
	stream := body
	chargeSoCBackend := false
	if rep.Engine == hwmodel.CEngine && backend == sz3.BackendDeflate {
		// Run the backend stage on the C-Engine, then hand the unwrapped
		// core stream to the SZ3 decoder.
		raw, err := l.engineDecompress(op, rep, hwmodel.Deflate, inner, maxOutput*8)
		if err != nil {
			return nil, err
		}
		stream = sz3.BuildContainer(sz3.BackendNone, raw)
	} else {
		if rep.Engine == hwmodel.CEngine {
			rep.Engine = hwmodel.SoC
			rep.Fallback = true
		}
		// The software backend stage is charged after decode, when the
		// expanded core-stream size is known.
		chargeSoCBackend = backend != sz3.BackendNone
	}
	// The predict/quantize inverse always runs on the SoC.
	var out []byte
	if dt == TypeFloat32 {
		vals, _, err := sz3.DecompressFloat32(stream)
		if err != nil {
			return nil, err
		}
		f64 := make([]float64, len(vals))
		for i, v := range vals {
			f64[i] = float64(v)
		}
		out = floatsToBytes(TypeFloat32, f64)
	} else if dt == TypeFloat64 {
		vals, _, err := sz3.DecompressFloat64(stream)
		if err != nil {
			return nil, err
		}
		out = floatsToBytes(TypeFloat64, vals)
	} else {
		return nil, fmt.Errorf("core: SZ3 payload needs a float datatype, got %v", dt)
	}
	if len(out) > maxOutput {
		return nil, fmt.Errorf("core: decompressed %d bytes exceed receive buffer %d", len(out), maxOutput)
	}
	if chargeSoCBackend {
		if _, err := l.ctx.SoCRun(backendAlgo(backend), hwmodel.Decompress, estimateCorePayload(len(out))); err != nil {
			return nil, err
		}
	}
	if _, err := l.ctx.SoCRun(hwmodel.SZ3Core, hwmodel.Decompress, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// backendAlgo maps an SZ3 backend to its cost-model algorithm.
func backendAlgo(b sz3.BackendKind) hwmodel.Algo {
	switch b {
	case sz3.BackendDeflate:
		return hwmodel.Deflate
	case sz3.BackendLZ4:
		return hwmodel.LZ4
	default:
		return hwmodel.FastLZ
	}
}
