package core

import (
	"bytes"
	"testing"

	"pedal/internal/hwmodel"
)

func TestHybridRoundTrip(t *testing.T) {
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib := newLib(t, gen)
		for _, n := range []int{0, 1, 1000, 1 << 20, 5<<20 + 12345} {
			data := textData(n)
			msg, crep, err := lib.Compress(DesignHybrid(), TypeBytes, data)
			if err != nil {
				t.Fatalf("%v n=%d: %v", gen, n, err)
			}
			out, _, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg, n+64)
			if err != nil {
				t.Fatalf("%v n=%d decompress: %v", gen, n, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("%v n=%d: round trip mismatch", gen, n)
			}
			if n >= 1<<20 && crep.Ratio() < 2 {
				t.Errorf("%v n=%d: hybrid ratio %.2f too low for text", gen, n, crep.Ratio())
			}
			lib.Release(msg)
		}
		lib.Finalize()
	}
}

func TestHybridHeaderAlgoID(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	msg, _, err := lib.Compress(DesignHybrid(), TypeBytes, textData(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	algo, _, err := ParseHeader(msg)
	if err != nil || algo != AlgoHybrid {
		t.Fatalf("header algo %v err %v", algo, err)
	}
}

func TestHybridFasterThanSerialSoCOnBF3(t *testing.T) {
	// BlueField-3 cannot compress on the C-Engine; the hybrid design's
	// value there is parallelising across the 16 SoC cores.
	lib := newLib(t, hwmodel.BlueField3)
	data := textData(16 << 20)
	_, serial, err := lib.Compress(Design{AlgoDeflate, hwmodel.SoC}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	_, hybrid, err := lib.Compress(DesignHybrid(), TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(serial.Virtual) / float64(hybrid.Virtual)
	t.Logf("BF3 hybrid vs serial SoC speedup: %.1fx (16 cores)", speedup)
	if speedup < 4 {
		t.Fatalf("hybrid speedup %.1f too small for a 16-core pool", speedup)
	}
}

func TestHybridNotSlowerThanCEngineOnBF2(t *testing.T) {
	// On BF2 the C-Engine dominates; the hybrid design must at least not
	// lose to the pure C-Engine design (it adds SoC core throughput).
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(32 << 20)
	_, pure, err := lib.Compress(Design{AlgoDeflate, hwmodel.CEngine}, TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	_, hybrid, err := lib.Compress(DesignHybrid(), TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a modest margin for chunk-framing and scheduling slack.
	if float64(hybrid.Virtual) > 1.3*float64(pure.Virtual) {
		t.Fatalf("hybrid %v much slower than pure C-Engine %v", hybrid.Virtual, pure.Virtual)
	}
}

func TestHybridCorruptFrame(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	msg, _, err := lib.Compress(DesignHybrid(), TypeBytes, textData(3<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-frame.
	if _, _, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg[:len(msg)/2], 4<<20); err == nil {
		t.Fatal("truncated hybrid frame accepted")
	}
	// Corrupt the chunk count.
	bad := append([]byte{}, msg...)
	bad[HeaderLen] = 0xFF
	bad[HeaderLen+1] = 0xFF
	if _, _, err := lib.Decompress(hwmodel.CEngine, TypeBytes, bad, 4<<20); err == nil {
		t.Fatal("corrupt hybrid header accepted")
	}
}

func TestHybridRespectsMaxOutput(t *testing.T) {
	lib := newLib(t, hwmodel.BlueField2)
	data := textData(4 << 20)
	msg, _, err := lib.Compress(DesignHybrid(), TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg, 1<<20); err == nil {
		t.Fatal("oversized hybrid output accepted")
	}
}
