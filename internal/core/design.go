// Package core is the PEDAL library itself — the paper's primary
// contribution (§III). It unifies lossy (SZ3) and lossless (DEFLATE,
// zlib, LZ4) compression behind one API, maximises use of the BlueField
// SoC and C-Engine, prearranges buffers and DOCA state at initialisation
// time, and tags every message with the tiny 3-byte PEDAL header so the
// receiver can pick the matching decompression design.
package core

import (
	"fmt"

	"pedal/internal/hwmodel"
)

// AlgoID is the wire identifier carried in the PEDAL header's second
// byte (paper Fig. 5): it tells the receiver which compression design
// decodes the payload.
type AlgoID uint8

// Wire algorithm identifiers. Zero is reserved so a stray 0x00 never
// parses as a valid design.
const (
	AlgoDeflate AlgoID = iota + 1
	AlgoZlib
	AlgoLZ4
	AlgoSZ3
)

func (a AlgoID) String() string {
	switch a {
	case AlgoDeflate:
		return "DEFLATE"
	case AlgoZlib:
		return "zlib"
	case AlgoLZ4:
		return "LZ4"
	case AlgoSZ3:
		return "SZ3"
	case AlgoHybrid:
		return "Hybrid-DEFLATE"
	case AlgoPipelined:
		return "Pipelined"
	default:
		return fmt.Sprintf("AlgoID(%d)", uint8(a))
	}
}

// Lossy reports whether the algorithm is lossy.
func (a AlgoID) Lossy() bool { return a == AlgoSZ3 }

// hwAlgo maps a wire algorithm to its cost-model identity.
func (a AlgoID) hwAlgo() hwmodel.Algo {
	switch a {
	case AlgoDeflate:
		return hwmodel.Deflate
	case AlgoZlib:
		return hwmodel.Zlib
	case AlgoLZ4:
		return hwmodel.LZ4
	case AlgoSZ3:
		return hwmodel.SZ3Core
	default:
		return 0
	}
}

// Design is one of PEDAL's compression designs: an algorithm bound to a
// preferred execution engine. Table III enumerates which designs each
// BlueField generation supports; Library.Compress falls back to the SoC
// when the preferred engine lacks the operation.
type Design struct {
	Algo   AlgoID
	Engine hwmodel.Engine
}

func (d Design) String() string {
	return fmt.Sprintf("%s_%s", d.Engine, d.Algo)
}

// Designs enumerates the eight designs of Table III in a stable order:
// the four algorithms on the SoC, then the four with C-Engine preference.
func Designs() []Design {
	algos := []AlgoID{AlgoDeflate, AlgoZlib, AlgoLZ4, AlgoSZ3}
	out := make([]Design, 0, 8)
	for _, a := range algos {
		out = append(out, Design{Algo: a, Engine: hwmodel.SoC})
	}
	for _, a := range algos {
		out = append(out, Design{Algo: a, Engine: hwmodel.CEngine})
	}
	return out
}

// LosslessDesigns returns the six lossless designs (Fig. 10's labels A-F:
// SoC_DEFLATE, C-Engine_DEFLATE, SoC_LZ4, C-Engine_LZ4, SoC_zlib,
// C-Engine_zlib).
func LosslessDesigns() []Design {
	return []Design{
		{AlgoDeflate, hwmodel.SoC},
		{AlgoDeflate, hwmodel.CEngine},
		{AlgoLZ4, hwmodel.SoC},
		{AlgoLZ4, hwmodel.CEngine},
		{AlgoZlib, hwmodel.SoC},
		{AlgoZlib, hwmodel.CEngine},
	}
}

// SupportsCompress reports whether gen can execute design's *compression*
// without falling back to the SoC. This is Table III's compression
// column: on BlueField-2 the C-Engine compresses DEFLATE natively and
// zlib/SZ3 through PEDAL's hybrid extension; BlueField-3's C-Engine
// compresses nothing.
func SupportsCompress(gen hwmodel.Generation, d Design) bool {
	if d.Engine == hwmodel.SoC {
		return true
	}
	if gen != hwmodel.BlueField2 {
		return false
	}
	switch d.Algo {
	case AlgoDeflate, AlgoZlib, AlgoSZ3:
		// SZ3 and zlib: PEDAL extensions riding the DEFLATE engine.
		return true
	default:
		return false // LZ4 has no C-Engine path on BF2
	}
}

// SupportsDecompress is Table III's decompression column: the DEFLATE
// engine decompresses on both generations (zlib and SZ3 ride it), and
// BlueField-3 adds native LZ4 decompression.
func SupportsDecompress(gen hwmodel.Generation, d Design) bool {
	if d.Engine == hwmodel.SoC {
		return true
	}
	switch d.Algo {
	case AlgoDeflate, AlgoZlib, AlgoSZ3:
		return gen == hwmodel.BlueField2 || gen == hwmodel.BlueField3
	case AlgoLZ4:
		return gen == hwmodel.BlueField3
	default:
		return false
	}
}
