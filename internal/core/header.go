package core

import "errors"

// The PEDAL header (paper Fig. 5, §III-E): three bytes prepended to every
// compressed message. The first and third bytes are 0xFF indicators that
// signal "this payload is compressed"; the second byte is the AlgoID
// naming the compression design, which the receiver uses to pick the
// matching decompression design.
const (
	headerLen       = 3
	headerIndicator = 0xFF
)

// ErrNoHeader marks a payload without a valid PEDAL header — by protocol
// it is an uncompressed message and must be delivered as-is.
var ErrNoHeader = errors.New("core: payload has no PEDAL header (uncompressed)")

// HeaderLen is the wire size of the PEDAL header.
const HeaderLen = headerLen

// putHeader writes the 3-byte header into dst (len >= headerLen).
func putHeader(dst []byte, algo AlgoID) {
	dst[0] = headerIndicator
	dst[1] = byte(algo)
	dst[2] = headerIndicator
}

// ParseHeader inspects a received payload. If it carries a valid PEDAL
// header it returns the algorithm and the compressed body; otherwise it
// returns ErrNoHeader and the caller should treat the whole payload as
// uncompressed data.
func ParseHeader(msg []byte) (AlgoID, []byte, error) {
	if len(msg) < headerLen || msg[0] != headerIndicator || msg[2] != headerIndicator {
		return 0, nil, ErrNoHeader
	}
	algo := AlgoID(msg[1])
	switch algo {
	case AlgoDeflate, AlgoZlib, AlgoLZ4, AlgoSZ3, AlgoHybrid, AlgoPipelined:
		return algo, msg[headerLen:], nil
	default:
		return 0, nil, ErrNoHeader
	}
}
