package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/pipeline"
	"pedal/internal/stats"
	"pedal/internal/sz3"
)

// AlgoPipelined marks a chunked-pipeline payload: a stream descriptor
// followed by self-describing chunk frames in completion order (see
// internal/pipeline). The inner codec is named by the descriptor, so one
// AlgoID covers every design routed through the pipeline.
const AlgoPipelined AlgoID = 6

// pipelineSpec maps a PEDAL design and datatype onto the chunk
// pipeline's codec spec. Hybrid rides the deflate engine split; zlib and
// LZ4 compress on the SoC (LZ4 still decompresses on BlueField-3's
// engine); SZ3 runs its SoC core with the FastLZ backend per chunk.
func (l *Library) pipelineSpec(d Design, dt DataType) (pipeline.Spec, error) {
	spec := pipeline.Spec{
		Engine:        d.Engine == hwmodel.CEngine || d.Algo == AlgoHybrid,
		Level:         l.opts.Level,
		Verify:        l.opts.Verify,
		VerifySampleN: l.opts.VerifySampleN,
		SDC:           l.sdc,
	}
	switch d.Algo {
	case AlgoDeflate, AlgoHybrid:
		spec.Algo = pipeline.AlgoDeflate
	case AlgoZlib:
		spec.Algo = pipeline.AlgoZlib
	case AlgoLZ4:
		spec.Algo = pipeline.AlgoLZ4
	case AlgoSZ3:
		switch dt {
		case TypeFloat32:
			spec.Algo = pipeline.AlgoSZ3F32
		case TypeFloat64:
			spec.Algo = pipeline.AlgoSZ3F64
		default:
			return spec, fmt.Errorf("core: SZ3 pipeline requires float data, got %v", dt)
		}
		// Chunks are independent 1-D streams; the multi-dim shape cannot
		// survive chunking, so the per-chunk config drops Dims.
		spec.SZ3 = sz3.Config{
			ErrorBound: l.opts.ErrorBound,
			Mode:       l.opts.SZ3Mode,
			Predictor:  l.opts.SZ3Predictor,
			Backend:    sz3.BackendFastLZ,
		}
	default:
		return spec, fmt.Errorf("core: design %v has no pipeline mapping", d.Algo)
	}
	return spec, nil
}

// PipelineSpec exposes the design→pipeline mapping for the MPI runtime,
// which streams chunks over the wire itself.
func (l *Library) PipelineSpec(d Design, dt DataType) (pipeline.Spec, error) {
	return l.pipelineSpec(d, dt)
}

// Pipeline exposes the library's chunk pipeline.
func (l *Library) Pipeline() *pipeline.Pipeline { return l.pl }

// CompressPipelined compresses data through the chunked pipeline and
// returns a self-contained wire message:
//
//	PEDAL header (AlgoPipelined) | descriptor | chunk frames
//
// Frames appear in completion order, not index order. The report's
// Virtual time is the pipeline makespan — the longest resource critical
// path, not the sum of chunk costs — which is the whole point: with k
// chunks spread over the SoC cores and the C-Engine, makespan ≈
// serial/k on the SoC side, and engine fixed costs are paid once.
func (l *Library) CompressPipelined(d Design, dt DataType, data []byte) ([]byte, Report, error) {
	return l.CompressPipelinedContext(context.Background(), d, dt, data)
}

// CompressPipelinedContext is CompressPipelined bounded by a caller
// deadline: the pipeline's dispatch and delivery loops checkpoint ctx
// per chunk, expired operations abandon with a typed dpu.ErrDeadline,
// and the partially-assembled output buffer returns to the pool. A
// background context takes exactly the classic path.
func (l *Library) CompressPipelinedContext(ctx context.Context, d Design, dt DataType, data []byte) ([]byte, Report, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, Report{}, ErrFinalized
	}
	octx, cancel := l.withOpDeadline(ctx)
	defer cancel()
	defer l.setOpCtx(octx)()
	op, old := l.beginOp()
	defer l.endOp(op, old)

	rep := Report{Design: d, Engine: hwmodel.SoC, InBytes: len(data)}
	if err := l.checkDeadline(op, "compress-pipelined"); err != nil {
		return nil, rep, err
	}
	spec, err := l.pipelineSpec(d, dt)
	if err != nil {
		return nil, rep, err
	}
	// Pin the chunk size so the descriptor and the execution agree.
	spec.ChunkSize = l.pl.ChunkSizeFor(len(data), spec)
	count := 0
	if len(data) > 0 {
		count = (len(data) + spec.ChunkSize - 1) / spec.ChunkSize
	}
	l.chargeSoCBufPrep(op, len(data))
	// The descriptor carries the source payload CRC only under
	// VerifyFull — and even then no serial digest pass runs here: the
	// pipeline workers each CRC their own chunk alongside the
	// compression and Summary.SrcCRC carries the combined stream value,
	// which is patched over the descriptor's placeholder below (the CRC
	// is the descriptor's trailing 4 bytes, and chunk frames only ever
	// append after it).
	out := l.pool.GetCap(headerLen + 32 + flate.CompressBound(len(data)))
	out = append(out, headerIndicator, byte(AlgoPipelined), headerIndicator)
	out = pipeline.AppendDescriptor(out, spec.Algo, count, spec.ChunkSize, len(data), 0)
	descEnd := len(out)
	sum, err := l.pl.CompressContext(l.curOpCtx(), data, spec, func(ch pipeline.Chunk) error {
		out = pipeline.AppendChunkFrame(out, ch.Index, ch.OrigLen, ch.CRC, ch.Data)
		return nil
	})
	if err != nil {
		// The partially assembled message is dead; recycling it is what
		// lets the overload soak assert zero leaked buffers after a
		// deadline storm.
		l.pool.Put(out)
		if errors.Is(err, dpu.ErrDeadline) {
			op.Inc(stats.CounterDeadlineAbandoned)
		}
		return nil, rep, err
	}
	binary.LittleEndian.PutUint32(out[descEnd-4:descEnd], sum.SrcCRC)
	op.Add(stats.PhaseCompress, sum.Makespan)
	if sum.Replayed > 0 {
		op.CountAdd(stats.CounterJobsReplayed, uint64(sum.Replayed))
	}
	if sum.VerifyMismatches > 0 {
		op.CountAdd(stats.CounterVerifyMismatches, uint64(sum.VerifyMismatches))
	}
	if sum.ScalarFallbacks > 0 {
		op.CountAdd(stats.CounterScalarFallbacks, uint64(sum.ScalarFallbacks))
	}
	if sum.Quarantines > 0 {
		op.CountAdd(stats.CounterCoresQuarantined, uint64(sum.Quarantines))
	}
	if sum.EngineChunks > 0 {
		rep.Engine = hwmodel.CEngine
	}
	if d.Engine == hwmodel.CEngine && sum.EngineChunks == 0 {
		rep.Fallback = true
	}
	rep.OutBytes = len(out) - headerLen
	rep.Phases = op.Snapshot()
	rep.Counts = op.Counts()
	rep.Virtual = op.Total()
	return out, rep, nil
}

// DecompressPipelined decodes a CompressPipelined message. It is the
// explicit counterpart of routing the message through Decompress (the
// header dispatches to the same implementation).
func (l *Library) DecompressPipelined(engine hwmodel.Engine, msg []byte, maxOutput int) ([]byte, Report, error) {
	return l.Decompress(engine, TypeBytes, msg, maxOutput)
}

// decompressPipelined handles the AlgoPipelined case of Decompress: all
// chunk frames are already in memory, so every chunk "arrives" at
// virtual time zero and the session fans the decodes across the SoC
// workers and the C-Engine.
func (l *Library) decompressPipelined(op *stats.Breakdown, rep *Report, body []byte, maxOutput int) ([]byte, error) {
	sess, count, err := l.newPipelinedSession(rep.Engine, body, maxOutput)
	if err != nil {
		return nil, err
	}
	rest := sess.rest
	for i := 0; i < count; i++ {
		index, origLen, crc, chunkBody, r, err := pipeline.ParseChunkFrame(rest)
		if err != nil {
			return nil, err
		}
		rest = r
		if err := sess.s.Submit(index, origLen, crc, chunkBody, 0); err != nil {
			if errors.Is(err, integrity.ErrCorrupt) {
				op.Inc(stats.CounterHopsRejected)
			}
			return nil, err
		}
	}
	out, sum, err := sess.s.Wait()
	if err != nil {
		if errors.Is(err, integrity.ErrCorrupt) {
			op.Inc(stats.CounterHopsRejected)
		}
		return nil, err
	}
	l.chargeSoCBufPrep(op, len(out))
	op.Add(stats.PhaseDecompress, sum.Makespan)
	if sum.Replayed > 0 {
		op.CountAdd(stats.CounterJobsReplayed, uint64(sum.Replayed))
	}
	if sum.EngineChunks > 0 {
		rep.Engine = hwmodel.CEngine
	} else if rep.Engine == hwmodel.CEngine {
		rep.Engine = hwmodel.SoC
		rep.Fallback = true
	}
	return out, nil
}

// PipelinedRecv is an open streamed-receive session: the MPI runtime
// submits chunk frames as they land and waits once all have arrived.
type PipelinedRecv struct {
	s    *pipeline.DecompressSession
	rest []byte
	// Count is the expected chunk count from the descriptor.
	Count int
	// OrigLen is the total uncompressed size from the descriptor.
	OrigLen int
}

// Submit feeds one chunk frame (as produced by AppendChunkFrame, without
// descriptor) arriving at the given virtual time. The frame bytes must
// stay valid until Wait.
func (r *PipelinedRecv) Submit(frame []byte, arrival time.Duration) error {
	index, origLen, crc, body, rest, err := pipeline.ParseChunkFrame(frame)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: trailing %d bytes after chunk frame", len(rest))
	}
	return r.s.Submit(index, origLen, crc, body, arrival)
}

// Wait blocks until every chunk decoded and returns the payload with the
// pipeline summary.
func (r *PipelinedRecv) Wait() ([]byte, pipeline.Summary, error) {
	return r.s.Wait()
}

// Abort cancels the streamed receive: in-flight chunk decodes drain
// first, so the session leaves no goroutine behind and the caller may
// reuse its frame buffers. The MPI runtime calls it when a rank failure
// interrupts a pipelined stream mid-flight.
func (r *PipelinedRecv) Abort() { r.s.Abort() }

// NewPipelinedRecv opens a streamed-receive session from a descriptor
// (the RTS payload in the MPI co-design). engine states the preferred
// decompression hardware.
func (l *Library) NewPipelinedRecv(engine hwmodel.Engine, desc []byte, maxOutput int) (*PipelinedRecv, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrFinalized
	}
	sess, count, err := l.newPipelinedSession(engine, desc, maxOutput)
	if err != nil {
		return nil, err
	}
	if len(sess.rest) != 0 {
		return nil, fmt.Errorf("core: trailing %d bytes after pipeline descriptor", len(sess.rest))
	}
	sess.Count = count
	return sess, nil
}

// newPipelinedSession parses a descriptor and opens the decompression
// session. The caller must hold l.mu.
func (l *Library) newPipelinedSession(engine hwmodel.Engine, body []byte, maxOutput int) (*PipelinedRecv, int, error) {
	algo, count, chunkSize, origLen, srcCRC, rest, err := pipeline.ParseDescriptor(body)
	if err != nil {
		return nil, 0, err
	}
	if maxOutput > 0 && origLen > maxOutput {
		return nil, 0, fmt.Errorf("core: pipelined payload of %d bytes exceeds receive buffer %d", origLen, maxOutput)
	}
	spec := pipeline.Spec{Algo: algo, Engine: engine == hwmodel.CEngine, Level: l.opts.Level}
	sess, err := l.pl.NewDecompress(spec, count, chunkSize, origLen, srcCRC)
	if err != nil {
		return nil, 0, err
	}
	return &PipelinedRecv{s: sess, rest: rest, Count: count, OrigLen: origLen}, count, nil
}
