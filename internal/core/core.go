package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pedal/internal/doca"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/mempool"
	"pedal/internal/pipeline"
	"pedal/internal/stats"
	"pedal/internal/sz3"
	"pedal/internal/trace"
)

// DataType mirrors the datatype parameter of PEDAL_compress (paper
// Listing 1): it tells the lossy pipeline how to interpret the buffer.
type DataType uint8

// Data types. TypeBytes selects lossless treatment; the float types
// enable SZ3.
const (
	TypeBytes DataType = iota + 1
	TypeFloat32
	TypeFloat64
)

func (t DataType) String() string {
	switch t {
	case TypeBytes:
		return "bytes"
	case TypeFloat32:
		return "float32"
	case TypeFloat64:
		return "float64"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(t))
	}
}

// Options configures PEDAL_Init.
type Options struct {
	// Generation selects the simulated BlueField generation. Zero means
	// BlueField-2.
	Generation hwmodel.Generation
	// Mode is the DPU host mode; PEDAL requires Separated Host (§II-A).
	// Zero means Separated Host.
	Mode dpu.Mode
	// Level is the lossless compression level (zlib scale); zero means 6.
	Level int
	// ErrorBound is the SZ3 error bound; zero means 1e-4, the paper's
	// evaluation setting. Interpreted per SZ3Mode.
	ErrorBound float64
	// SZ3Mode selects absolute or relative (range-scaled) error bounds;
	// zero means absolute.
	SZ3Mode sz3.BoundMode
	// SZ3Predictor overrides the lossy prediction stage; zero means the
	// hybrid Auto strategy.
	SZ3Predictor sz3.PredictorKind
	// SZ3Dims describes the array shape for multi-dimensional lossy
	// compression (slowest-varying first). Empty means 1-D.
	SZ3Dims []int
	// Baseline disables PEDAL's optimisations for comparison runs: every
	// operation re-pays DOCA initialisation and buffer preparation, the
	// way the paper's baseline does (§V-D).
	Baseline bool
	// PrewarmSizes pre-populates the memory pool at Init (in addition to
	// the defaults) so the steady-state path never allocates.
	PrewarmSizes []int
	// Device lets callers share one simulated DPU between libraries (the
	// MPI runtime does this to model sender and receiver processes on
	// one DPU). Nil means create a private device from Generation/Mode.
	Device *dpu.Device
	// Resilience tunes the dynamic fault handling (retry policy, job
	// deadlines, circuit breaker). Nil means defaults.
	Resilience *ResilienceOptions
	// FaultInjector, when set, is installed on the device's C-Engine at
	// Init so tests and the fault-sweep experiment can exercise the
	// failure paths deterministically.
	FaultInjector *faults.Injector
	// Verify selects verified compression: Off trusts kernel output (the
	// pre-integrity behaviour), Sampled decode-verifies one in
	// VerifySampleN operations, Full verifies every one. Verification
	// catches silent data corruption — a flipped bit in an engine result,
	// a miscompiled vector kernel — before the bytes leave the library,
	// and transparently re-executes on the scalar reference path.
	Verify integrity.VerifyMode
	// VerifySampleN is the sampling stride for VerifySampled; zero means
	// integrity.DefaultSampleN.
	VerifySampleN int
	// ComputeFaults, when set, is installed on the device's C-Engine and
	// the SoC compress paths at Init: it injects silent data corruption
	// (bit flips, quantizer drift, buffer stomps) *before* checksums are
	// taken, so only verified compression can catch it. Used by the
	// ext-sdcfaults soak.
	ComputeFaults *faults.ComputeInjector
	// MemBudget caps the memory pool's outstanding bytes (overload fault
	// domain): governed draws (GetCtx/TryGet at the service and staging
	// boundaries) wait or shed once held bytes reach the budget, so the
	// daemon degrades instead of OOMing. Zero leaves the pool ungoverned.
	MemBudget int64
	// DefaultDeadline bounds each operation when the caller's context
	// carries no deadline of its own: expired work is abandoned at the
	// next checkpoint with a typed dpu.ErrDeadline. Zero means no
	// implicit deadline (context-free calls behave exactly as before).
	DefaultDeadline time.Duration
}

// ResilienceOptions configures the fault-handling layer. Zero fields
// select defaults.
type ResilienceOptions struct {
	// MaxAttempts, RetryBase, RetryMax shape doca.Submit's transient
	// retry loop (defaults: 4 attempts, 50µs base, 5ms cap).
	MaxAttempts int
	RetryBase   time.Duration
	RetryMax    time.Duration
	// JobDeadline bounds each C-Engine job's completion wait; zero
	// waits forever.
	JobDeadline time.Duration
	// BreakerThreshold consecutive hard failures open the per-device
	// circuit breaker (default 3); while open, every BreakerProbeEvery-th
	// operation probes the engine (default 8).
	BreakerThreshold  int
	BreakerProbeEvery int
	// DisableBreaker turns the breaker off entirely; hard engine
	// failures then degrade ops one at a time.
	DisableBreaker bool
	// Watchdog, when non-nil, arms the C-Engine stall watchdog at Init
	// (zero fields select dpu defaults): stalled jobs are failed with
	// ErrEngineLost and replayed on the SoC, a wedged engine is
	// hot-reset, and exhausted resets degrade it permanently. Nil leaves
	// the watchdog off; jobs are then bounded only by JobDeadline.
	Watchdog *dpu.WatchdogConfig
}

// Report describes one Compress or Decompress execution: where it ran,
// what it cost in modelled hardware time, and how big the data was.
type Report struct {
	Design   Design
	Engine   hwmodel.Engine // engine that actually executed
	Fallback bool           // true when the C-Engine lacked the op and the SoC ran it
	// Degraded marks a *dynamic* fallback: the hardware supports the
	// path, but a runtime failure or an open circuit breaker pushed the
	// operation to the SoC (the paper's §III-D machinery, triggered by
	// faults instead of capability bits).
	Degraded bool
	InBytes  int
	OutBytes int
	Virtual  time.Duration
	Phases   map[stats.Phase]time.Duration
	// Counts reports the resilience events (retries, timeouts, breaker
	// transitions...) this operation incurred.
	Counts map[stats.Counter]uint64
	// MsgCRC is the CRC-32 of the returned buffer (the wire message for
	// Compress, the expanded output for Decompress), computed once at the
	// source so downstream hops — pipeline descriptors, transport frames,
	// fleet responses, checkpoint shards — can carry and check it instead
	// of recomputing or trusting.
	MsgCRC uint32
}

// Ratio is the compression ratio original/compressed of a compression
// report (zero for decompression reports).
func (r Report) Ratio() float64 {
	if r.OutBytes == 0 {
		return 0
	}
	return float64(r.InBytes) / float64(r.OutBytes)
}

// Library is an initialised PEDAL context: the analogue of the state
// PEDAL_Init builds. It is safe for concurrent use.
type Library struct {
	mu   sync.Mutex
	opts Options
	dev  *dpu.Device
	// ownDev records whether Finalize should close the device.
	ownDev bool
	ctx    *doca.Context
	pool   *mempool.Pool
	pl     *pipeline.Pipeline
	total  *stats.Breakdown
	// breaker guards the C-Engine path against a failing engine; nil
	// when disabled.
	breaker *faults.Breaker
	// sampler decides which operations decode-verify their output
	// (compute fault domain); nil-safe, never hits when Verify is Off.
	sampler *integrity.Sampler
	// sdc is the silent-data-corruption injector shared with the
	// C-Engine; the SoC compress producers consult it too so vectorized
	// software kernels are faultable. Nil in production.
	sdc    *faults.ComputeInjector
	closed bool
	// opCtx is the active operation's caller context (overload fault
	// domain). l.mu serializes operations, so the engine-path helpers
	// read it instead of threading a parameter through every signature;
	// nil means background (the classic context-free entry points).
	opCtx context.Context
}

// ErrFinalized is returned by operations on a finalized library.
var ErrFinalized = errors.New("core: library finalized")

// Init is PEDAL_init: it builds the whole environment once — device
// open, DOCA initialisation, memory-pool prewarming — so that the
// per-message path pays none of it (§III-C, §III-D).
func Init(opts Options) (*Library, error) {
	if opts.Generation == 0 {
		opts.Generation = hwmodel.BlueField2
	}
	if opts.Mode == 0 {
		opts.Mode = dpu.SeparatedHost
	}
	if opts.Level == 0 {
		opts.Level = 6
	}
	if opts.ErrorBound == 0 {
		opts.ErrorBound = sz3.DefaultErrorBound
	}
	if opts.Mode == dpu.SmartNIC {
		return nil, errors.New("core: PEDAL requires Separated Host mode (SmartNIC mode loses host RDMA-IB, §II-A)")
	}
	dev := opts.Device
	ownDev := false
	if dev == nil {
		var err error
		dev, err = dpu.NewDevice(opts.Generation, opts.Mode)
		if err != nil {
			return nil, err
		}
		ownDev = true
	} else if dev.Generation() != opts.Generation && opts.Generation != 0 {
		opts.Generation = dev.Generation()
	}
	total := stats.NewBreakdown()
	ctx, err := doca.Init(dev, total)
	if err != nil {
		if ownDev {
			dev.Close()
		}
		return nil, err
	}
	lib := &Library{
		opts:   opts,
		dev:    dev,
		ownDev: ownDev,
		ctx:    ctx,
		pool:   mempool.New(),
		total:  total,
	}
	// The chunk pipeline's persistent SoC worker pool is part of the
	// Init-time environment (one worker per ARM core), so per-message
	// pipelined operations spawn nothing.
	lib.pl = pipeline.New(dev, 0, lib.pool)
	// Resilience wiring: retry policy on the DOCA context, fault
	// injector on the engine, circuit breaker on the library.
	policy := doca.DefaultRetryPolicy()
	if r := opts.Resilience; r != nil {
		if r.MaxAttempts > 0 {
			policy.MaxAttempts = r.MaxAttempts
		}
		if r.RetryBase > 0 {
			policy.BaseBackoff = r.RetryBase
		}
		if r.RetryMax > 0 {
			policy.MaxBackoff = r.RetryMax
		}
		policy.JobDeadline = r.JobDeadline
	}
	ctx.SetRetryPolicy(policy)
	if opts.FaultInjector != nil {
		dev.SetFaultInjector(opts.FaultInjector)
	}
	// Compute fault domain: the sampler gates decode-verification, the
	// SDC injector (tests/soaks only) corrupts kernel output pre-checksum
	// on both the C-Engine and the SoC producers.
	lib.sampler = integrity.NewSampler(opts.Verify, opts.VerifySampleN)
	if opts.ComputeFaults != nil {
		lib.sdc = opts.ComputeFaults
		dev.CEngine().SetComputeInjector(opts.ComputeFaults)
	}
	if r := opts.Resilience; r == nil || !r.DisableBreaker {
		bc := faults.BreakerConfig{}
		if r != nil {
			bc.Threshold = r.BreakerThreshold
			bc.ProbeEvery = r.BreakerProbeEvery
		}
		lib.breaker = faults.NewBreaker(bc)
	}
	if r := opts.Resilience; r != nil && r.Watchdog != nil {
		// Engine fault domain: the hook mirrors watchdog transitions into
		// the lifetime counters and re-opens the DOCA context after a
		// hot-reset. On a shared device the last library's hook wins —
		// acceptable because the MPI runtime shares one engine whose
		// recovery is device-global anyway.
		dev.CEngine().SetEventHook(lib.onEngineEvent)
		dev.CEngine().StartWatchdog(*r.Watchdog)
	}
	// Prewarm the buffer pool: default classes cover the paper's message
	// sweep (4 KiB – 64 MiB) plus any caller-specified sizes.
	sizes := []int{4 << 10, 64 << 10, 1 << 20, 8 << 20, 64 << 20}
	sizes = append(sizes, opts.PrewarmSizes...)
	lib.pool.Prewarm(sizes, 4)
	// Overload fault domain: arm the pool budget after prewarming so the
	// retained warm buffers never count against it.
	if opts.MemBudget > 0 {
		lib.pool.SetBudget(opts.MemBudget)
	}
	return lib, nil
}

// Finalize is PEDAL_finalize: releases the environment.
func (l *Library) Finalize() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.pl.Close()
	l.ctx.Close()
	if l.ownDev {
		l.dev.Close()
	}
}

// Device exposes the simulated DPU (used by the MPI co-design and the
// experiment harness).
func (l *Library) Device() *dpu.Device { return l.dev }

// Generation reports the DPU generation the library runs on.
func (l *Library) Generation() hwmodel.Generation { return l.dev.Generation() }

// Options returns the Init-time options.
func (l *Library) Options() Options { return l.opts }

// TotalBreakdown returns the library-lifetime accounting, including the
// one-time Init charges.
func (l *Library) TotalBreakdown() *stats.Breakdown { return l.total }

// PoolStats reports memory-pool hits and misses.
func (l *Library) PoolStats() (hits, misses uint64) { return l.pool.Stats() }

// Pool exposes the library's governed memory pool so the service layer
// can draw request staging buffers from the same budget the compression
// paths charge.
func (l *Library) Pool() *mempool.Pool { return l.pool }

// PoolSnapshot reports the full pool counter set, including the
// overload-domain budget accounting (held/peak bytes, pressure events,
// oversize drops).
func (l *Library) PoolSnapshot() mempool.Snapshot { return l.pool.Snapshot() }

// PoolOutstanding reports memory-pool buffers currently held by callers
// (gets minus puts). Fault soaks sample it before and after injected
// failures to assert aborted operations leak no pooled buffers.
func (l *Library) PoolOutstanding() int64 { return l.pool.Outstanding() }

// nopCancel is the no-allocation cancel returned when no implicit
// deadline is applied.
func nopCancel() {}

// withOpDeadline applies the library's DefaultDeadline to a context that
// carries none of its own. Callers must invoke the returned cancel.
func (l *Library) withOpDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if l.opts.DefaultDeadline > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, l.opts.DefaultDeadline)
		}
	}
	return ctx, nopCancel
}

// setOpCtx installs ctx as the active operation's context (callers hold
// l.mu) and returns a restore func for the previous value. Background
// contexts are stored as nil so the hot paths skip all checkpointing.
func (l *Library) setOpCtx(ctx context.Context) func() {
	prev := l.opCtx
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	l.opCtx = ctx
	return func() { l.opCtx = prev }
}

// curOpCtx returns the active operation's context (callers hold l.mu).
func (l *Library) curOpCtx() context.Context {
	if l.opCtx != nil {
		return l.opCtx
	}
	return context.Background()
}

// checkDeadline is a deadline checkpoint: when the active operation's
// context has expired it counts the abandonment, traces it, and returns
// the typed error the caller must propagate after releasing any pooled
// buffers it holds. A nil/background context costs one nil check.
func (l *Library) checkDeadline(op *stats.Breakdown, where string) error {
	if l.opCtx == nil {
		return nil
	}
	err := l.opCtx.Err()
	if err == nil {
		return nil
	}
	op.Inc(stats.CounterDeadlineAbandoned)
	if tr := l.dev.CEngine().Tracer(); tr != nil {
		tr.Record(trace.Event{Engine: "core", Op: "deadline_abandoned", Algo: where, Err: err.Error()})
	}
	return fmt.Errorf("core: %s abandoned at deadline checkpoint: %w: %v", where, dpu.ErrDeadline, err)
}

// beginOp redirects accounting to a fresh per-op breakdown. Callers must
// hold l.mu and call endOp with the returned values.
func (l *Library) beginOp() (*stats.Breakdown, *stats.Breakdown) {
	op := stats.NewBreakdown()
	old := l.ctx.SwapBreakdown(op)
	if l.opts.Baseline {
		// The baseline pays DOCA initialisation on every message (§V-D:
		// "memory allocation and the DOCA initialization procedure are
		// invoked during every message transmission").
		op.Add(stats.PhaseDOCAInit, hwmodel.InitCost(l.dev.Generation()))
	}
	return op, old
}

func (l *Library) endOp(op, old *stats.Breakdown) {
	l.ctx.SwapBreakdown(old)
	l.total.Merge(op)
}

// chargeBufPrep models buffer acquisition for n bytes. PEDAL's pooled
// buffers cost nothing at steady state; the baseline re-allocates and
// re-maps per message.
func (l *Library) chargeBufPrep(op *stats.Breakdown, engine hwmodel.Engine, n int) {
	if !l.opts.Baseline {
		return
	}
	op.Add(stats.PhaseBufPrep, hwmodel.BufPrepCost(l.dev.Generation(), engine, n))
}

// getBuf takes a pooled buffer; Release returns message buffers to the
// pool for reuse.
func (l *Library) getBuf(n int) []byte { return l.pool.Get(n) }

// Release returns a buffer obtained from Compress or Decompress to the
// memory pool. Optional: the GC collects unreleased buffers, but
// releasing keeps the steady-state path allocation-free.
func (l *Library) Release(buf []byte) { l.pool.Put(buf) }

// Breaker exposes the per-device circuit breaker (nil when disabled) so
// experiments and tests can observe its state.
func (l *Library) Breaker() *faults.Breaker { return l.breaker }

// engineAllowed consults the engine fault-domain state and the circuit
// breaker before a C-Engine attempt. A rejection means the engine is
// resetting/degraded or the breaker is open: the operation degrades
// straight to the SoC and is counted.
func (l *Library) engineAllowed(op *stats.Breakdown) bool {
	if l.dev.CEngine().State() != dpu.EngineLive {
		op.Inc(stats.CounterDegradedOps)
		return false
	}
	// Integrity quarantine: an engine with a verified-mismatch streak is
	// held on the scalar/SoC path, with half-open probes letting it earn
	// readmission once its output verifies clean again.
	if !l.dev.CEngine().IntegrityAllow() {
		op.Inc(stats.CounterDegradedOps)
		return false
	}
	if l.breaker == nil || l.breaker.Allow() {
		return true
	}
	op.Inc(stats.CounterDegradedOps)
	return false
}

// onEngineEvent is the C-Engine fault-domain hook: it mirrors watchdog
// transitions into the lifetime counters and performs the DOCA re-open
// half of a hot-reset. It runs on the watchdog goroutine and must not
// take l.mu — the operation holding l.mu may be blocked waiting for this
// very watchdog pass to fail its stalled job.
func (l *Library) onEngineEvent(ev dpu.EngineEvent) {
	switch ev.Kind {
	case dpu.EventStallDetected:
		l.total.Inc(stats.CounterEngineStalls)
	case dpu.EventWedgeDeclared:
		l.total.Inc(stats.CounterEngineWedges)
	case dpu.EventResetOK:
		l.total.Inc(stats.CounterEngineResets)
		l.ctx.Reopen()
	case dpu.EventResetFailed:
		l.total.Inc(stats.CounterEngineResetFailures)
	case dpu.EventDegraded:
		l.total.Inc(stats.CounterEngineDegraded)
	}
}

// EngineHealth snapshots the C-Engine fault domain (state, in-flight
// depth, stall/reset/replay counters) for diagnostics and the service
// health endpoint.
func (l *Library) EngineHealth() dpu.EngineHealth { return l.dev.CEngine().Health() }

// noteEngineResult feeds a C-Engine submission outcome to the breaker
// and counters. Capability misses (ErrUnsupported) are static conditions
// and never count as engine failures.
func (l *Library) noteEngineResult(op *stats.Breakdown, err error) {
	if err == nil {
		if l.breaker.Success() {
			op.Inc(stats.CounterBreakerRecoveries)
			l.traceBreaker("closed", "engine recovered")
		}
		return
	}
	if errors.Is(err, dpu.ErrUnsupported) {
		return
	}
	if errors.Is(err, dpu.ErrDeadline) && l.opCtx != nil && l.opCtx.Err() != nil {
		// The caller's deadline expired mid-wait: an abandonment, not an
		// engine fault — feeding it to the breaker would let a deadline
		// storm trip the engine open while the hardware is healthy.
		return
	}
	op.Inc(stats.CounterEngineFailures)
	if l.breaker.Failure() {
		op.Inc(stats.CounterBreakerTrips)
		l.traceBreaker("open", err.Error())
	}
}

// traceBreaker records a breaker transition on the engine's tracer.
func (l *Library) traceBreaker(state, why string) {
	if tr := l.dev.CEngine().Tracer(); tr != nil {
		tr.Record(trace.Event{Engine: "breaker", Op: state, Err: why})
	}
}
