package core

// verify.go is the verified-compression layer of the compute fault
// domain: compressed output is not trusted just because the kernel that
// produced it returned success. Silent data corruption — a flipped bit
// in a C-Engine result, a miscompiled vector kernel, a stale mempool
// buffer — passes every post-hoc checksum, because the checksum is
// taken over the already-corrupt bytes. The only defence is to close
// the loop: decode the output (lossless) or recompress through the
// scalar reference path (lossy) and compare against the source before
// the bytes leave the library. A mismatch re-executes the operation on
// the trusted scalar path and feeds the integrity ledger that
// quarantines a repeatedly-corrupting engine.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"pedal/internal/faults"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/lz4"
	"pedal/internal/stats"
	"pedal/internal/sz3"
	"pedal/internal/zlibfmt"
)

// socCore is the injector stream the serial SoC producers draw from; it
// coincides with the engine's unit so one seeded schedule drives a
// single-library run deterministically.
const socCore = 0

// injectSDC gives the SDC injector a shot at a software-produced
// compressed payload. The C-Engine path never calls this: its injection
// happens inside the engine, *before* the job checksum is taken, which
// is what makes the corruption silent to the engine fault domain.
func (l *Library) injectSDC(out []byte) {
	if l.sdc == nil {
		return
	}
	if d := l.sdc.Next(socCore); d.Class != faults.None {
		l.sdc.Apply(d, out)
	}
}

// verifyCompressed decode-verifies (or differentially referees) a
// compressed payload against its source. On a mismatch it counts the
// event, attributes it to the engine when the engine produced the
// bytes, re-executes on the scalar reference path, and re-verifies the
// replacement; a second failure is unrecoverable and surfaces as a
// typed integrity.CorruptError.
func (l *Library) verifyCompressed(op *stats.Breakdown, d Design, rep *Report, dt DataType, src, payload []byte) ([]byte, error) {
	eng := l.dev.CEngine()
	if l.checkPayload(d.Algo, dt, src, payload) {
		if rep.Engine == hwmodel.CEngine {
			// A verified-clean engine result is evidence for readmission
			// when the engine is quarantined (half-open probe).
			eng.ReportVerified()
		}
		return payload, nil
	}
	op.Inc(stats.CounterVerifyMismatches)
	if rep.Engine == hwmodel.CEngine {
		if eng.ReportCorrupt() {
			op.Inc(stats.CounterCoresQuarantined)
		}
	}
	redo, err := l.scalarReexec(op, d, dt, src)
	if err != nil {
		return nil, err
	}
	if !l.checkPayload(d.Algo, dt, src, redo) {
		return nil, &integrity.CorruptError{
			Hop:     "core.verify",
			Segment: d.Algo.String(),
			Want:    uint32(len(src)),
		}
	}
	// The operation now ran on the trusted scalar path: report it as the
	// dynamic degradation it is.
	rep.Engine = hwmodel.SoC
	rep.Degraded = true
	return redo, nil
}

// checkPayload answers "does this compressed payload faithfully encode
// src?" — by round-trip decode for the lossless formats, and by the
// differential referee (byte-compare against the scalar reference
// compressor) for SZ3, whose lossiness makes decode-compare
// inapplicable but whose slab kernels are pinned byte-identical to the
// reference.
func (l *Library) checkPayload(algo AlgoID, dt DataType, src, payload []byte) bool {
	limit := len(src) + 64
	switch algo {
	case AlgoDeflate:
		out, err := flate.DecompressLimit(payload, limit)
		return err == nil && bytes.Equal(out, src)
	case AlgoZlib:
		out, err := zlibfmt.DecompressLimit(payload, limit)
		return err == nil && bytes.Equal(out, src)
	case AlgoLZ4:
		out, err := lz4.DecompressLimit(payload, limit)
		return err == nil && bytes.Equal(out, src)
	case AlgoHybrid:
		out, err := decodeHybridScalar(payload, limit)
		return err == nil && bytes.Equal(out, src)
	case AlgoSZ3:
		backend, inner, err := sz3.SplitContainer(payload)
		if err != nil {
			return false
		}
		if backend == sz3.BackendDeflate {
			// Engine-offloaded backend: recover the core stream by
			// software inflate and referee it against the scalar
			// reference core. This catches both a corrupt slab-produced
			// core (the engine compressed bad bytes) and a corrupt
			// engine result (the inflate diverges or fails).
			ref, err := l.sz3Reference(dt, src, sz3.BackendNone)
			if err != nil {
				return false
			}
			_, refCore, err := sz3.SplitContainer(ref)
			if err != nil {
				return false
			}
			got, err := flate.DecompressLimit(inner, len(refCore)+64)
			return err == nil && bytes.Equal(got, refCore)
		}
		// Software backend: the whole container must match the scalar
		// reference byte for byte (backend stage included — it is shared
		// scalar code on both sides).
		ref, err := l.sz3Reference(dt, src, backend)
		return err == nil && bytes.Equal(ref, payload)
	default:
		return true
	}
}

// scalarReexec re-runs a compression on the trusted scalar path after a
// verification mismatch: token-refereed DEFLATE with stored-block
// recovery for the lossless designs, the scalar reference walk for SZ3.
// The cost model charges the re-execution as a fresh SoC pass.
func (l *Library) scalarReexec(op *stats.Breakdown, d Design, dt DataType, src []byte) ([]byte, error) {
	op.Inc(stats.CounterScalarFallbacks)
	if _, err := l.ctx.SoCRun(d.Algo.hwAlgo(), hwmodel.Compress, len(src)); err != nil {
		return nil, err
	}
	switch d.Algo {
	case AlgoDeflate:
		out, _ := flate.AppendCompressVerified(l.pool.GetCap(flate.CompressBound(len(src))), src, l.opts.Level)
		return out, nil
	case AlgoZlib:
		body, _ := flate.AppendCompressVerified(nil, src, l.opts.Level)
		return zlibfmt.Assemble(l.opts.Level, body, src), nil
	case AlgoLZ4:
		return lz4.AppendCompress(l.pool.GetCap(lz4.CompressBound(len(src))), src), nil
	case AlgoHybrid:
		// A single software span is a valid hybrid frame; parallelism is
		// not worth re-risking a misbehaving kernel here.
		comp, _ := flate.AppendCompressVerified(nil, src, l.opts.Level)
		out := binary.AppendUvarint(nil, 1)
		out = binary.AppendUvarint(out, uint64(len(src)))
		out = binary.AppendUvarint(out, uint64(len(comp)))
		return append(out, comp...), nil
	case AlgoSZ3:
		if d.Engine == hwmodel.CEngine {
			// The engine design ships a DEFLATE-backed container; rebuild
			// it entirely in software from the reference core stream.
			ref, err := l.sz3Reference(dt, src, sz3.BackendNone)
			if err != nil {
				return nil, err
			}
			_, core, err := sz3.SplitContainer(ref)
			if err != nil {
				return nil, err
			}
			body, _ := flate.AppendCompressVerified(nil, core, l.opts.Level)
			return sz3.BuildContainer(sz3.BackendDeflate, body), nil
		}
		return l.sz3Reference(dt, src, sz3.BackendFastLZ)
	default:
		return nil, fmt.Errorf("core: no scalar re-execution path for %v", d.Algo)
	}
}

// sz3Reference compresses src through the scalar reference walk with
// the library's lossy configuration and the given backend.
func (l *Library) sz3Reference(dt DataType, src []byte, backend sz3.BackendKind) ([]byte, error) {
	cfg := sz3.Config{
		ErrorBound: l.opts.ErrorBound,
		Mode:       l.opts.SZ3Mode,
		Predictor:  l.opts.SZ3Predictor,
		Dims:       l.opts.SZ3Dims,
		Backend:    backend,
	}
	if dt == TypeFloat32 {
		if len(src)%4 != 0 {
			return nil, fmt.Errorf("core: float32 buffer length %d not a multiple of 4", len(src))
		}
		vals := make([]float32, len(src)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		}
		return sz3.CompressFloat32Reference(vals, cfg)
	}
	vals, err := bytesToFloats(dt, src)
	if err != nil {
		return nil, err
	}
	return sz3.CompressFloat64Reference(vals, cfg)
}

// decodeHybridScalar inflates a hybrid frame entirely in software,
// sequentially — the referee takes no shortcuts and shares nothing with
// the parallel path it is judging.
func decodeHybridScalar(body []byte, maxOutput int) ([]byte, error) {
	count, n := binary.Uvarint(body)
	if n <= 0 || count == 0 || count > maxHybridChunks {
		return nil, fmt.Errorf("core: corrupt hybrid frame header")
	}
	pos := n
	var out []byte
	for i := uint64(0); i < count; i++ {
		orig, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt hybrid span %d origLen", i)
		}
		pos += n
		comp, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt hybrid span %d compLen", i)
		}
		pos += n
		if pos+int(comp) > len(body) {
			return nil, fmt.Errorf("core: hybrid span %d overruns frame", i)
		}
		if len(out)+int(orig) > maxOutput {
			return nil, fmt.Errorf("core: hybrid output exceeds %d bytes", maxOutput)
		}
		dec, err := flate.DecompressLimit(body[pos:pos+int(comp)], int(orig)+64)
		if err != nil {
			return nil, err
		}
		if len(dec) != int(orig) {
			return nil, fmt.Errorf("core: hybrid span %d decoded %d bytes, declared %d", i, len(dec), orig)
		}
		out = append(out, dec...)
		pos += int(comp)
	}
	return out, nil
}
