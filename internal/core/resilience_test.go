package core

import (
	"bytes"
	"strings"
	"testing"

	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

var resilientSrc = []byte(strings.Repeat("core resilience round trip ", 300))

func faultyLib(t *testing.T, cfg faults.Config, r *ResilienceOptions) *Library {
	t.Helper()
	lib, err := Init(Options{
		Generation:    hwmodel.BlueField2,
		FaultInjector: faults.NewInjector(cfg),
		Resilience:    r,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Finalize)
	return lib
}

func roundTrip(t *testing.T, lib *Library) (Report, Report) {
	t.Helper()
	design := Design{Algo: AlgoDeflate, Engine: hwmodel.CEngine}
	msg, crep, err := lib.Compress(design, TypeBytes, resilientSrc)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	out, drep, err := lib.Decompress(hwmodel.CEngine, TypeBytes, msg, len(resilientSrc)+64)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(out, resilientSrc) {
		t.Fatal("round trip not byte-identical")
	}
	return crep, drep
}

// A permanently failing engine must never produce wrong data or a failed
// operation: the breaker trips and everything degrades to the SoC path.
func TestPersistentFaultDegradesToSoC(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 11, PPersistent: 1.0},
		&ResilienceOptions{BreakerThreshold: 2, BreakerProbeEvery: 8},
	)
	var sawDegraded bool
	for i := 0; i < 20; i++ {
		crep, _ := roundTrip(t, lib)
		if crep.Degraded {
			sawDegraded = true
		}
		if crep.Fallback && !crep.Degraded {
			t.Fatal("dynamic degradation misreported as static capability fallback")
		}
	}
	if !sawDegraded {
		t.Fatal("no operation reported Degraded despite a dead engine")
	}
	if lib.Breaker().State() != faults.StateOpen {
		t.Fatalf("breaker state = %v, want open", lib.Breaker().State())
	}
	tb := lib.TotalBreakdown()
	if tb.Count(stats.CounterBreakerTrips) == 0 {
		t.Fatal("breaker never tripped")
	}
	if tb.Count(stats.CounterDegradedOps) == 0 {
		t.Fatal("degraded ops not counted")
	}
}

// Transient faults are absorbed by doca's retry loop; output stays
// correct and the retry counter shows the machinery fired.
func TestTransientFaultsRetriedTransparently(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 12, PTransient: 0.4},
		&ResilienceOptions{MaxAttempts: 8},
	)
	for i := 0; i < 30; i++ {
		roundTrip(t, lib)
	}
	if lib.TotalBreakdown().Count(stats.CounterRetries) == 0 {
		t.Fatal("40% transient rate produced no retries")
	}
}

// A bounded outage: the breaker trips, then a half-open probe succeeds
// once the injector budget drains, and the engine comes back.
func TestBreakerRecoversAfterOutage(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 13, PPersistent: 1.0, MaxInjections: 6},
		&ResilienceOptions{MaxAttempts: 1, BreakerThreshold: 3, BreakerProbeEvery: 4},
	)
	for i := 0; i < 60; i++ {
		roundTrip(t, lib)
	}
	tb := lib.TotalBreakdown()
	if tb.Count(stats.CounterBreakerTrips) == 0 {
		t.Fatal("outage did not trip the breaker")
	}
	if tb.Count(stats.CounterBreakerRecoveries) == 0 {
		t.Fatal("breaker never recovered after the outage ended")
	}
	if lib.Breaker().State() != faults.StateClosed {
		t.Fatalf("breaker state = %v, want closed after recovery", lib.Breaker().State())
	}
	// Post-recovery operations run on the engine again, undegraded.
	crep, _ := roundTrip(t, lib)
	if crep.Degraded || crep.Fallback {
		t.Fatalf("post-recovery op degraded=%v fallback=%v", crep.Degraded, crep.Fallback)
	}
	if crep.Engine != hwmodel.CEngine {
		t.Fatalf("post-recovery engine = %v, want CEngine", crep.Engine)
	}
}

// Corrupted engine output must be caught by checksum verification and
// retried; data integrity holds end to end.
func TestCorruptionNeverEscapes(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 14, PCorrupt: 0.3},
		&ResilienceOptions{MaxAttempts: 8},
	)
	for i := 0; i < 30; i++ {
		roundTrip(t, lib)
	}
	if lib.TotalBreakdown().Count(stats.CounterCorruptions) == 0 {
		t.Fatal("30% corruption rate never detected")
	}
}

// With the breaker disabled, hard failures degrade individual operations
// but correctness still holds.
func TestDisabledBreakerStillDegrades(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 15, PPersistent: 1.0},
		&ResilienceOptions{MaxAttempts: 1, DisableBreaker: true},
	)
	crep, _ := roundTrip(t, lib)
	if !crep.Degraded {
		t.Fatal("op not reported degraded")
	}
	if lib.Breaker() != nil {
		t.Fatal("breaker built despite DisableBreaker")
	}
}

// Per-op reports carry the resilience counters.
func TestReportCountsExposed(t *testing.T) {
	lib := faultyLib(t,
		faults.Config{Seed: 16, PTransient: 1.0, MaxInjections: 1},
		&ResilienceOptions{MaxAttempts: 4},
	)
	crep, _ := roundTrip(t, lib)
	if crep.Counts[stats.CounterRetries] != 1 {
		t.Fatalf("report retries = %d, want 1", crep.Counts[stats.CounterRetries])
	}
}
