// Package fastlz implements a fast byte-oriented LZ compressor that fills
// the role zstd plays inside the real SZ3: a quick lossless backend with
// moderate ratio, clearly faster than DEFLATE but weaker in ratio. (zstd
// itself is out of scope for a stdlib-only reproduction; see DESIGN.md's
// substitution table.)
//
// Stream format (little-endian):
//
//	[8-byte uncompressed size]
//	sequence of ops:
//	  ctrl 0x00-0x1F: literal run of ctrl+1 bytes, bytes follow
//	  ctrl 0x20-0xFF: match; len3 = ctrl>>5 (1..7), base length len3+2;
//	                  if len3 == 7 a 255-run extension follows;
//	                  then 2-byte little-endian offset (1..65535)
package fastlz

import (
	"errors"
	"fmt"
)

// Errors returned by Decompress.
var (
	ErrCorrupt  = errors.New("fastlz: corrupt stream")
	ErrTooLarge = errors.New("fastlz: output exceeds limit")
)

const (
	minMatch    = 3
	maxDistance = 65535
	hashLog     = 14
	hashSize    = 1 << hashLog
)

func hash4(v uint32) uint32 { return (v * 2654435761) >> (32 - hashLog) }

func load32(p []byte, i int) uint32 {
	return uint32(p[i]) | uint32(p[i+1])<<8 | uint32(p[i+2])<<16 | uint32(p[i+3])<<24
}

// Compress compresses src. The output always begins with the 8-byte
// uncompressed size so decompression can pre-size its buffer.
func Compress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	n := uint64(len(src))
	for k := 0; k < 8; k++ {
		out = append(out, byte(n>>(8*k)))
	}
	if len(src) == 0 {
		return out
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	limit := len(src) - 4
	for i < limit {
		h := hash4(load32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand > maxDistance || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		matchLen := 4
		maxLen := len(src) - i
		for matchLen < maxLen && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		out = appendLiterals(out, src[anchor:i])
		out = appendMatch(out, matchLen, i-cand)
		i += matchLen
		anchor = i
	}
	return appendLiterals(out, src[anchor:])
}

func appendLiterals(out, lits []byte) []byte {
	for len(lits) > 0 {
		n := len(lits)
		if n > 32 {
			n = 32
		}
		out = append(out, byte(n-1))
		out = append(out, lits[:n]...)
		lits = lits[n:]
	}
	return out
}

func appendMatch(out []byte, length, offset int) []byte {
	l := length - 2 // encoded length, >= 1
	if l < 7 {
		out = append(out, byte(l<<5))
	} else {
		out = append(out, 7<<5)
		rem := l - 7
		for rem >= 255 {
			out = append(out, 255)
			rem -= 255
		}
		out = append(out, byte(rem))
	}
	return append(out, byte(offset), byte(offset>>8))
}

// Decompress reverses Compress, refusing outputs larger than limit.
func Decompress(src []byte, limit int) ([]byte, error) {
	if len(src) < 8 {
		return nil, fmt.Errorf("%w: missing size header", ErrCorrupt)
	}
	var size uint64
	for k := 0; k < 8; k++ {
		size |= uint64(src[k]) << (8 * k)
	}
	if size > uint64(limit) {
		return nil, ErrTooLarge
	}
	out := make([]byte, 0, size)
	i := 8
	n := len(src)
	for i < n {
		ctrl := src[i]
		i++
		if ctrl < 0x20 {
			runLen := int(ctrl) + 1
			if i+runLen > n {
				return nil, fmt.Errorf("%w: literal run overruns input", ErrCorrupt)
			}
			if len(out)+runLen > limit {
				return nil, ErrTooLarge
			}
			out = append(out, src[i:i+runLen]...)
			i += runLen
			continue
		}
		l := int(ctrl >> 5)
		if l == 7 {
			for {
				if i >= n {
					return nil, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
				}
				b := src[i]
				i++
				l += int(b)
				if b != 255 {
					break
				}
			}
		}
		length := l + 2
		if i+2 > n {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("%w: offset %d at output %d", ErrCorrupt, offset, len(out))
		}
		if len(out)+length > limit {
			return nil, ErrTooLarge
		}
		start := len(out) - offset
		for k := 0; k < length; k++ {
			out = append(out, out[start+k])
		}
	}
	if uint64(len(out)) != size {
		return nil, fmt.Errorf("%w: output %d != declared %d", ErrCorrupt, len(out), size)
	}
	return out, nil
}
