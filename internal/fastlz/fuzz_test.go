package fastlz

import (
	"bytes"
	"testing"
)

// FuzzDecompress must never panic on arbitrary input.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add(Compress([]byte("fastlz fuzz seed material, repeated repeated")))
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0x40, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data, 1<<22)
		if err == nil && len(out) > 1<<22 {
			t.Fatalf("limit exceeded: %d", len(out))
		}
	})
}

// FuzzRoundTrip requires byte-exact round trips.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add(bytes.Repeat([]byte("ab"), 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decompress(Compress(data), len(data)+16)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
