package fastlz

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rnd := make([]byte, 50000)
	rng.Read(rnd)
	inputs := map[string][]byte{
		"empty":   {},
		"one":     {1},
		"three":   {1, 2, 3},
		"zeros":   make([]byte, 100000),
		"text":    []byte(strings.Repeat("fastlz is the zstd stand-in. ", 3000)),
		"random":  rnd,
		"repeats": bytes.Repeat([]byte{1, 2, 3, 4, 5}, 9999),
	}
	for name, src := range inputs {
		comp := Compress(src)
		got, err := Decompress(comp, len(src)+16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: mismatch (%d vs %d)", name, len(got), len(src))
		}
	}
}

func TestCompressesRedundantData(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 8000)
	comp := Compress(src)
	if len(comp) > len(src)/8 {
		t.Fatalf("got %d of %d bytes; want < 12.5%%", len(comp), len(src))
	}
}

func TestDeclaredSizeMismatchRejected(t *testing.T) {
	comp := Compress([]byte("hello world hello world"))
	comp[0]++ // corrupt declared size
	if _, err := Decompress(comp, 1<<20); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestLimitEnforced(t *testing.T) {
	comp := Compress(make([]byte, 100000))
	if _, err := Decompress(comp, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestCorruptOffset(t *testing.T) {
	// Size 8, one literal, then a match with offset 500 > output size.
	bad := []byte{8, 0, 0, 0, 0, 0, 0, 0, 0x00, 'a', 0x40, 0xF4, 0x01}
	if _, err := Decompress(bad, 100); err == nil {
		t.Fatal("bad offset accepted")
	}
}

func TestTruncatedInput(t *testing.T) {
	comp := Compress([]byte(strings.Repeat("data!", 100)))
	for cut := 8; cut < len(comp); cut += 3 {
		if _, err := Decompress(comp[:cut], 1<<20); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decompress([]byte{1, 2}, 10); err == nil {
		t.Fatal("missing header accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16, alpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%40 + 1
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(a))
		}
		got, err := Decompress(Compress(src), len(src)+16)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20000))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}
