package datasets

import (
	"bytes"
	"math"
	"testing"
)

func TestSnapshotsDeterministic(t *testing.T) {
	s := Snapshots{Seed: 42, Ranks: 3, Elems: 4096}
	if !bytes.Equal(s.Rank(7, 1), s.Rank(7, 1)) {
		t.Fatal("same (epoch, rank) produced different bytes")
	}
	if bytes.Equal(s.Rank(7, 1), s.Rank(7, 2)) {
		t.Fatal("different ranks produced identical bytes")
	}
	if bytes.Equal(s.Rank(7, 1), s.Rank(8, 1)) {
		t.Fatal("different epochs produced identical bytes")
	}
	if bytes.Equal(s.Rank(7, 1), Snapshots{Seed: 43, Ranks: 3, Elems: 4096}.Rank(7, 1)) {
		t.Fatal("different seeds produced identical bytes")
	}
}

func TestSnapshotsShape(t *testing.T) {
	s := Snapshots{} // all defaults
	ep := s.Epoch(1)
	if len(ep) != 4 {
		t.Fatalf("default ranks = %d, want 4", len(ep))
	}
	for r, b := range ep {
		if len(b) != 4*64*1024 {
			t.Fatalf("rank %d: %d bytes, want %d", r, len(b), 4*64*1024)
		}
	}
}

// TestSnapshotsDrift pins the workload shape: consecutive epochs of one
// rank differ by small deltas (a drifting field), while far-apart
// epochs have moved substantially.
func TestSnapshotsDrift(t *testing.T) {
	s := Snapshots{Seed: 1, Elems: 8192}
	meanAbsDelta := func(a, b []byte) float64 {
		fa, fb := Floats(a), Floats(b)
		var sum float64
		for i := range fa {
			sum += math.Abs(float64(fa[i] - fb[i]))
		}
		return sum / float64(len(fa))
	}
	near := meanAbsDelta(s.Rank(10, 0), s.Rank(11, 0))
	far := meanAbsDelta(s.Rank(10, 0), s.Rank(60, 0))
	if near > 0.3 {
		t.Fatalf("consecutive epochs differ by %.3f on average; drift too fast for a snapshot series", near)
	}
	if far < 2*near {
		t.Fatalf("epoch 60 vs 10 delta %.3f not clearly above consecutive delta %.3f", far, near)
	}
	// The field is bounded: amplitudes sum to 4.6 plus noise.
	for _, v := range Floats(s.Rank(10, 0)) {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 5 {
			t.Fatalf("field value %g out of range", v)
		}
	}
}
