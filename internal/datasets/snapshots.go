package datasets

import (
	"math"
	"math/rand"
)

// Snapshots generates a periodic-snapshot time series: the per-rank
// state of a simulated field that drifts smoothly between checkpoint
// epochs, with seeded per-sample noise. This is the checkpoint/restart
// workload shape — successive epochs of one rank differ by small
// deltas, ranks hold different slabs of the same global field — and it
// is fully deterministic in (Seed, epoch, rank), so a checkpoint
// store's repair ladder can re-materialise any shard it has lost.
type Snapshots struct {
	// Seed selects the series; zero is a valid fixed series.
	Seed int64
	// Ranks is the number of per-rank slabs; zero means 4.
	Ranks int
	// Elems is the float32 count per rank snapshot; zero means 64 Ki.
	Elems int
	// Drift is the per-epoch phase advance of the field; zero means
	// 0.05 (slow drift: consecutive snapshots stay highly similar).
	Drift float64
	// Noise is the per-sample jitter amplitude; zero means 0.002.
	Noise float64
}

func (s Snapshots) ranks() int { return defaultInt(s.Ranks, 4) }
func (s Snapshots) elems() int { return defaultInt(s.Elems, 64*1024) }
func (s Snapshots) drift() float64 {
	if s.Drift == 0 {
		return 0.05
	}
	return s.Drift
}
func (s Snapshots) noise() float64 {
	if s.Noise == 0 {
		return 0.002
	}
	return s.Noise
}

func defaultInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

// Rank returns rank's snapshot at the given epoch as little-endian
// float32 bytes. The field is a sum of smooth spatial modes whose
// phases advance with the epoch (the drift), plus seeded noise keyed by
// (Seed, epoch, rank): calling Rank twice with the same arguments
// yields identical bytes.
func (s Snapshots) Rank(epoch uint64, rank int) []byte {
	n := s.elems()
	out := make([]byte, 4*n)
	// The noise stream is keyed by the full identity of the snapshot so
	// epochs and ranks decorrelate, while the smooth field below keeps
	// consecutive epochs close.
	key := s.Seed ^ int64(epoch)*0x9e3779b9 ^ int64(rank)*0x85ebca6b
	rng := rand.New(rand.NewSource(key))
	phase := s.drift() * float64(epoch)
	// Each rank owns a contiguous slab of the global coordinate axis.
	x0 := float64(rank) * float64(n)
	for i := 0; i < n; i++ {
		x := x0 + float64(i)
		v := 3.0*math.Sin(x/257.0+phase) +
			1.2*math.Sin(x/41.0+2.1*phase) +
			0.4*math.Cos(x/11.0+0.7*phase) +
			rng.NormFloat64()*s.noise()
		bits := math.Float32bits(float32(v))
		out[4*i] = byte(bits)
		out[4*i+1] = byte(bits >> 8)
		out[4*i+2] = byte(bits >> 16)
		out[4*i+3] = byte(bits >> 24)
	}
	return out
}

// Epoch returns every rank's snapshot at the given epoch — the shard
// slice a checkpoint Commit takes.
func (s Snapshots) Epoch(epoch uint64) [][]byte {
	out := make([][]byte, s.ranks())
	for r := range out {
		out[r] = s.Rank(epoch, r)
	}
	return out
}

// Floats decodes a snapshot back to float32 values (analysis and
// tests).
func Floats(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		bits := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}
