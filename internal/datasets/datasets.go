// Package datasets generates deterministic synthetic equivalents of the
// eight benchmark datasets in the paper's Table IV. The real corpora
// (silesia, obs_error from the FPC suite, exaalt from SDRBench) are not
// redistributable inside this offline reproduction, so each generator
// reproduces the *size* and the *statistical character* that drive
// compression behaviour: markup text, DICOM-like smooth volumes, source
// code, executable images, and high-precision floating-point series.
//
// The generators are seeded and deterministic: every run of every
// benchmark sees identical bytes.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dataset describes one benchmark input.
type Dataset struct {
	// Name matches the paper's Table IV naming.
	Name string
	// Description matches Table IV's description column.
	Description string
	// Size is the generated size in bytes (Table IV's sizes).
	Size int
	// Lossy marks datasets used for the lossy (SZ3) experiments; their
	// bytes are little-endian float32 values.
	Lossy bool
	// Gen produces the data; cached by Bytes.
	gen func(size int) []byte

	cache []byte
}

// Bytes generates (and caches) the dataset content.
func (d *Dataset) Bytes() []byte {
	if d.cache == nil {
		d.cache = d.gen(d.Size)
		if len(d.cache) != d.Size {
			panic(fmt.Sprintf("datasets: %s generated %d bytes, want %d", d.Name, len(d.cache), d.Size))
		}
	}
	return d.cache
}

// MiB in bytes; Table IV sizes are decimal-ish MB but the exact scale
// only needs to be consistent.
const mib = 1 << 20

// All returns the eight datasets of Table IV in the paper's order.
func All() []*Dataset {
	return []*Dataset{
		SilesiaXML(),
		SilesiaMR(),
		SilesiaSamba(),
		ObsError(),
		SilesiaMozilla(),
		ExaaltDataset1(),
		ExaaltDataset3(),
		ExaaltDataset2(),
	}
}

// Lossless returns the five lossless-benchmark datasets in ascending
// size order (the order Figs. 7-8 plot them).
func Lossless() []*Dataset {
	return []*Dataset{SilesiaXML(), SilesiaMR(), SilesiaSamba(), ObsError(), SilesiaMozilla()}
}

// LossyGroup returns the three exaalt datasets in ascending size order
// (the order Fig. 9 plots them).
func LossyGroup() []*Dataset {
	return []*Dataset{ExaaltDataset1(), ExaaltDataset3(), ExaaltDataset2()}
}

// ByName returns the named dataset or nil.
func ByName(name string) *Dataset {
	for _, d := range All() {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// SilesiaXML is the silesia/xml stand-in: 5.1 MB of markup-heavy text
// (paper ratio: DEFLATE 7.769).
func SilesiaXML() *Dataset {
	return &Dataset{
		Name:        "silesia/xml",
		Description: "XML files, text",
		Size:        51 * mib / 10,
		gen:         genXML,
	}
}

// SilesiaMR is the silesia/mr stand-in: 9.51 MB resembling a 3-D MRI
// volume in DICOM-like 16-bit samples (paper ratio: DEFLATE 2.712).
func SilesiaMR() *Dataset {
	return &Dataset{
		Name:        "silesia/mr",
		Description: "3-D MRI image, DICOM",
		Size:        951 * mib / 100,
		gen:         genMRI,
	}
}

// SilesiaSamba is the silesia/samba stand-in: 20.61 MB of source code
// and build artifacts (paper ratio: DEFLATE 3.963).
func SilesiaSamba() *Dataset {
	return &Dataset{
		Name:        "silesia/samba",
		Description: "source code and graphics",
		Size:        2061 * mib / 100,
		gen:         genSource,
	}
}

// ObsError is the obs_error stand-in: 30 MB of IEEE-754 float32
// brightness-temperature errors (paper ratio: DEFLATE 1.469 — barely
// compressible mantissas under structured exponents).
func ObsError() *Dataset {
	return &Dataset{
		Name:        "obs_error",
		Description: "single Float-Point",
		Size:        30 * mib,
		gen:         genObsError,
	}
}

// SilesiaMozilla is the silesia/mozilla stand-in: 48.85 MB resembling a
// large executable image (paper ratio: DEFLATE 2.683).
func SilesiaMozilla() *Dataset {
	return &Dataset{
		Name:        "silesia/mozilla",
		Description: "exe",
		Size:        4885 * mib / 100,
		gen:         genExecutable,
	}
}

// The exaalt stand-ins: molecular-dynamics float32 trajectories at the
// three Table IV sizes. Dataset numbering follows the paper (1=10 MB,
// 3=31 MB, 2=64 MB — the paper lists them in that ascending-size order).
func ExaaltDataset1() *Dataset {
	return &Dataset{Name: "exaalt-dataset1", Description: "MD simulation, single float-point", Size: 10 * mib, Lossy: true, gen: genMD(1)}
}

// ExaaltDataset3 is the 31 MB exaalt trace.
func ExaaltDataset3() *Dataset {
	return &Dataset{Name: "exaalt-dataset3", Description: "MD simulation, single float-point", Size: 31 * mib, Lossy: true, gen: genMD(3)}
}

// ExaaltDataset2 is the 64 MB exaalt trace.
func ExaaltDataset2() *Dataset {
	return &Dataset{Name: "exaalt-dataset2", Description: "MD simulation, single float-point", Size: 64 * mib, Lossy: true, gen: genMD(2)}
}

// ---- generators ----

var xmlTags = []string{
	"article", "section", "para", "title", "author", "ref", "item",
	"entry", "keyword", "abstract", "figure", "table", "cell",
}

var xmlWords = []string{
	"compression", "performance", "data", "the", "of", "and", "in",
	"system", "evaluation", "result", "method", "network",
}

func genXML(size int) []byte {
	rng := rand.New(rand.NewSource(0x5e11a))
	out := make([]byte, 0, size+256)
	out = append(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<corpus>\n"...)
	depth := 1
	id := 0
	for len(out) < size {
		switch r := rng.Intn(10); {
		case r < 4 && depth < 6:
			tag := xmlTags[rng.Intn(len(xmlTags))]
			id++
			out = append(out, fmt.Sprintf("<%s id=\"%d\" lang=\"en\">", tag, id)...)
			out = append(out, '\n')
			depth++
		case r < 6 && depth > 1:
			tag := xmlTags[rng.Intn(len(xmlTags))]
			out = append(out, "</"...)
			out = append(out, tag...)
			out = append(out, ">\n"...)
			depth--
		default:
			n := rng.Intn(12) + 3
			for w := 0; w < n; w++ {
				out = append(out, xmlWords[rng.Intn(len(xmlWords))]...)
				out = append(out, ' ')
			}
			out = append(out, '\n')
		}
	}
	return out[:size]
}

func genMRI(size int) []byte {
	rng := rand.New(rand.NewSource(0x3d3d))
	out := make([]byte, size)
	// A 3-D volume of 16-bit samples: smooth anatomical gradients with
	// sensor noise in the low bits and black (zero) background slabs.
	n := size / 2
	const slice = 256 * 256
	for i := 0; i < n; i++ {
		z := i / slice
		xy := i % slice
		x, y := xy%256, xy/256
		// Background outside an ellipse is zero (like real MR slices).
		dx, dy := float64(x-128)/110, float64(y-128)/95
		var v int
		if dx*dx+dy*dy <= 1 {
			base := 900 + 300*math.Sin(float64(x)/17)*math.Cos(float64(y)/23) +
				200*math.Sin(float64(z)/5)
			v = int(base) + rng.Intn(64) // low-bit noise
		}
		out[2*i] = byte(v)
		out[2*i+1] = byte(v >> 8)
	}
	return out
}

var srcIdents = []string{
	"buffer", "status", "ctx", "request", "handle", "offset", "length",
	"client", "server", "packet", "frame", "config", "state", "entry",
	"smb_read", "smb_write", "tdb_fetch", "talloc", "mem_ctx",
}

var srcLines = []string{
	"if (%s == NULL) {\n\treturn NT_STATUS_NO_MEMORY;\n}\n",
	"status = %s(mem_ctx, &%s);\n",
	"DEBUG(5, (\"%s: processing %s\\n\"));\n",
	"for (i = 0; i < %s->num_entries; i++) {\n",
	"static int %s_internal(struct %s *p, uint32_t %s)\n{\n",
	"memcpy(%s, %s, sizeof(*%s));\n",
	"}\n\n",
	"\t%s->%s = talloc_zero(mem_ctx, struct %s);\n",
	"/* %s handles the %s path for the %s case */\n",
}

func genSource(size int) []byte {
	rng := rand.New(rand.NewSource(0x5a3ba))
	out := make([]byte, 0, size+512)
	// silesia/samba is "source code and graphics": mostly C source with
	// embedded binary blobs (icons, compiled objects), which is what
	// holds its DEFLATE ratio near 4 rather than 8+.
	for len(out) < size {
		if rng.Intn(420) == 0 {
			// Graphics/object blob: moderately noisy binary run.
			n := rng.Intn(4000) + 2000
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					out = append(out, 0)
				} else {
					out = append(out, byte(rng.Intn(256)))
				}
			}
			continue
		}
		line := srcLines[rng.Intn(len(srcLines))]
		args := make([]any, strings.Count(line, "%s"))
		for i := range args {
			// Identifiers with numeric suffixes widen the vocabulary the
			// way a real 20 MB codebase does.
			if rng.Intn(3) == 0 {
				args[i] = fmt.Sprintf("%s_%x", srcIdents[rng.Intn(len(srcIdents))], rng.Intn(4096))
			} else {
				args[i] = srcIdents[rng.Intn(len(srcIdents))]
			}
		}
		out = append(out, fmt.Sprintf(line, args...)...)
	}
	return out[:size]
}

func genObsError(size int) []byte {
	rng := rand.New(rand.NewSource(0x0b5e))
	out := make([]byte, size)
	n := size / 4
	// Brightness-temperature errors: small magnitudes around zero with
	// full-precision noisy mantissas. Sign/exponent bytes repeat heavily
	// (compressible); mantissa bytes are near-random. This lands DEFLATE
	// in the paper's ≈1.4-1.5 ratio regime.
	for i := 0; i < n; i++ {
		// Instrument quantisation: real brightness-temperature errors
		// carry ~12 significant bits, so the low mantissa bytes repeat.
		v := float32(math.Round(rng.NormFloat64()*0.25*32768) / 32768)
		bits := math.Float32bits(v)
		out[4*i] = byte(bits)
		out[4*i+1] = byte(bits >> 8)
		out[4*i+2] = byte(bits >> 16)
		out[4*i+3] = byte(bits >> 24)
	}
	return out
}

func genExecutable(size int) []byte {
	rng := rand.New(rand.NewSource(0x0e1f))
	out := make([]byte, 0, size+4096)
	// An executable image alternates: machine-code sections (skewed byte
	// distribution with recurring opcode patterns), string/data tables,
	// relocation-like structured records, and zero padding.
	opcodes := []byte{0x48, 0x89, 0x8B, 0x55, 0xE8, 0xC3, 0x0F, 0x83, 0x74, 0x75, 0x90, 0xFF, 0x41, 0x31}
	// Recurring function prologues/epilogues: compilers stamp the same
	// byte sequences thousands of times across a large binary.
	prologues := [][]byte{
		{0x55, 0x48, 0x89, 0xE5, 0x41, 0x57, 0x41, 0x56, 0x53, 0x50},
		{0x48, 0x83, 0xEC, 0x28, 0x48, 0x8B, 0x05},
		{0x5D, 0xC3, 0x66, 0x2E, 0x0F, 0x1F, 0x84, 0x00},
		{0xF3, 0x0F, 0x1E, 0xFA, 0x41, 0x54, 0x55, 0x53},
	}
	strs := []string{"GetProcAddress", "nsGlobalWindow", "mozilla::dom::", "libxul.so", "NS_ERROR_FAILURE", "/usr/lib/firefox"}
	for len(out) < size {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // code section chunk
			n := rng.Intn(2048) + 512
			for i := 0; i < n; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2:
					out = append(out, byte(rng.Intn(256)))
				case 3:
					out = append(out, prologues[rng.Intn(len(prologues))]...)
				default:
					out = append(out, opcodes[rng.Intn(len(opcodes))])
				}
			}
		case 4, 5: // string table
			for i := 0; i < 96; i++ {
				out = append(out, strs[rng.Intn(len(strs))]...)
				out = append(out, 0)
			}
		case 6, 7: // relocation-like records
			for i := 0; i < 512; i++ {
				addr := rng.Intn(1 << 20)
				out = append(out, byte(addr), byte(addr>>8), byte(addr>>16), 0x00, byte(rng.Intn(4)), 0, 0, 0)
			}
		default: // padding
			out = append(out, make([]byte, rng.Intn(3072)+512)...)
		}
	}
	return out[:size]
}

// genMD produces molecular-dynamics-like float32 data: particle
// coordinates evolving smoothly under thermal jitter. The variant seeds
// differ so the three exaalt datasets have distinct (paper-matching
// ordering) compressibility: dataset1 is the noisiest (lowest SZ3
// ratio), datasets 2 and 3 are smoother.
func genMD(variant int64) func(size int) []byte {
	return func(size int) []byte {
		rng := rand.New(rand.NewSource(0xed0 + variant))
		n := size / 4
		out := make([]byte, size)
		// SDRBench exaalt traces store per-particle coordinate series:
		// each particle's trajectory is contiguous and smooth, which is
		// what the SZ predictors exploit. Variant 1 carries the most
		// thermal jitter (lowest SZ3 ratio in Table V(b)); 2 and 3 are
		// smoother.
		noise, velScale := 0.0001, 0.001
		if variant == 1 {
			noise, velScale = 0.012, 0.010
		}
		const steps = 4096 // timesteps per particle trajectory
		i := 0
		for i < n {
			// One particle trajectory: position integrates a slowly
			// wandering velocity, plus thermal jitter per sample.
			pos := rng.Float64() * 50
			vel := rng.NormFloat64() * velScale
			m := steps
			if i+m > n {
				m = n - i
			}
			for s := 0; s < m; s++ {
				vel += rng.NormFloat64() * velScale / 25
				pos += vel
				v := float32(pos + rng.NormFloat64()*noise)
				bits := math.Float32bits(v)
				out[4*i] = byte(bits)
				out[4*i+1] = byte(bits >> 8)
				out[4*i+2] = byte(bits >> 16)
				out[4*i+3] = byte(bits >> 24)
				i++
			}
		}
		return out
	}
}
