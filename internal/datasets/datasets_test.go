package datasets

import (
	"testing"

	"pedal/internal/flate"
	"pedal/internal/lz4"
)

// Table IV sizes must match the paper (within integer rounding of MB).
func TestTable4DatasetInventory(t *testing.T) {
	want := []struct {
		name   string
		sizeMB float64
		lossy  bool
	}{
		{"silesia/xml", 5.1, false},
		{"silesia/mr", 9.51, false},
		{"silesia/samba", 20.61, false},
		{"obs_error", 30, false},
		{"silesia/mozilla", 48.85, false},
		{"exaalt-dataset1", 10, true},
		{"exaalt-dataset3", 31, true},
		{"exaalt-dataset2", 64, true},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d datasets, want %d", len(all), len(want))
	}
	for i, w := range want {
		d := all[i]
		if d.Name != w.name {
			t.Errorf("dataset %d = %s, want %s", i, d.Name, w.name)
		}
		gotMB := float64(d.Size) / (1 << 20)
		if diff := gotMB - w.sizeMB; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s size %.2f MB, want %.2f", d.Name, gotMB, w.sizeMB)
		}
		if d.Lossy != w.lossy {
			t.Errorf("%s lossy = %v", d.Name, d.Lossy)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := SilesiaXML().Bytes()
	b := SilesiaXML().Bytes() // fresh instance regenerates
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic content at %d", i)
		}
	}
}

func TestBytesCached(t *testing.T) {
	d := SilesiaXML()
	p1 := d.Bytes()
	p2 := d.Bytes()
	if &p1[0] != &p2[0] {
		t.Fatal("Bytes not cached")
	}
}

func TestByName(t *testing.T) {
	if ByName("silesia/mr") == nil {
		t.Fatal("silesia/mr not found")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name found")
	}
}

// ratioOn compresses a prefix (full datasets are large; a 4 MB prefix
// predicts the ratio well) and returns original/compressed.
func ratioOn(t *testing.T, d *Dataset, algo string) float64 {
	t.Helper()
	data := d.Bytes()
	if len(data) > 4<<20 {
		data = data[:4<<20]
	}
	var comp []byte
	switch algo {
	case "deflate":
		comp = flate.Compress(data, 6)
	case "lz4":
		comp = lz4.Compress(data)
	}
	return float64(len(data)) / float64(len(comp))
}

// Table V(a)'s ordering must hold: xml ≫ samba > {mr, mozilla} > obs_error,
// and DEFLATE above LZ4 on every dataset.
func TestTable5aRatioOrdering(t *testing.T) {
	r := map[string]float64{}
	for _, d := range Lossless() {
		r[d.Name] = ratioOn(t, d, "deflate")
		rl := ratioOn(t, d, "lz4")
		t.Logf("%-16s deflate=%.3f lz4=%.3f", d.Name, r[d.Name], rl)
		if rl >= r[d.Name] {
			t.Errorf("%s: LZ4 ratio %.2f not below DEFLATE %.2f", d.Name, rl, r[d.Name])
		}
	}
	if !(r["silesia/xml"] > r["silesia/samba"]) {
		t.Error("xml must out-compress samba")
	}
	if !(r["silesia/samba"] > r["obs_error"]) {
		t.Error("samba must out-compress obs_error")
	}
	if !(r["silesia/mr"] > r["obs_error"]) {
		t.Error("mr must out-compress obs_error")
	}
	if !(r["silesia/mozilla"] > r["obs_error"]) {
		t.Error("mozilla must out-compress obs_error")
	}
	// The paper's regimes, loosely: xml ≈ 7.8, obs_error ≈ 1.5.
	if r["silesia/xml"] < 4 {
		t.Errorf("xml ratio %.2f far below the paper's 7.77 regime", r["silesia/xml"])
	}
	if r["obs_error"] > 2.5 {
		t.Errorf("obs_error ratio %.2f far above the paper's 1.47 regime", r["obs_error"])
	}
}

func TestLossyGroupAscendingSizes(t *testing.T) {
	g := LossyGroup()
	if len(g) != 3 {
		t.Fatal("lossy group size")
	}
	for i := 1; i < len(g); i++ {
		if g[i].Size <= g[i-1].Size {
			t.Fatalf("lossy group not ascending: %d then %d", g[i-1].Size, g[i].Size)
		}
	}
}

func TestLossyDatasetsAreFloat32Aligned(t *testing.T) {
	for _, d := range LossyGroup() {
		if d.Size%4 != 0 {
			t.Errorf("%s size %d not float32-aligned", d.Name, d.Size)
		}
	}
}
