// Package testutil holds cross-package test helpers. VerifyNoLeaks is
// the overload fault domain's drain assertion: a test that spins up
// servers, routers, or pipelines registers it first, and at cleanup the
// goroutine count must return to its starting point — a handler or
// worker still running after drain is a leak, exactly the class of bug
// that turns sustained overload into slow death.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long VerifyNoLeaks waits for goroutines started by
// the test to unwind before declaring a leak. Connection teardown and
// worker exits are asynchronous, so the count is polled, not sampled
// once.
const leakGrace = 5 * time.Second

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to the baseline
// (within grace) by the end of the test. Call it before starting any
// servers or pools so their goroutines are attributed to the test.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, goroutineDump())
	})
}

// Drained fails the test when a pool-style resource reports outstanding
// items after the work it served has finished. outstanding is typically
// mempool.Pool.Outstanding or core.Library.PoolOutstanding.
func Drained(t testing.TB, what string, outstanding func() int64) {
	t.Helper()
	deadline := time.Now().Add(leakGrace)
	for {
		n := outstanding()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s leak: %d buffers still outstanding after drain", what, n)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutineDump renders the current goroutine stacks, truncated so a
// leak failure stays readable.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	const maxLines = 120
	lines := strings.SplitAfterN(s, "\n", maxLines+1)
	if len(lines) > maxLines {
		return strings.Join(lines[:maxLines], "") + "... (truncated)\n"
	}
	return s
}
