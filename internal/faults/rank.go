package faults

import (
	"fmt"
	"sort"
	"time"
)

// Process-level (rank) failure classes. These sit above the per-job and
// per-frame classes: an entire MPI rank dies, pauses, or reboots, and
// the runtime's heartbeat failure detector — not any single operation —
// is what notices.
const (
	// RankCrash kills the rank silently and permanently: its heartbeat
	// stops, in-flight sends are lost, and it never returns. Peers learn
	// of the death only through the failure detector.
	RankCrash Class = iota + 32
	// RankHang pauses the rank's heartbeat for a bounded duration (a
	// long GC pause, an OS hiccup). If the pause stays under the
	// detector's suspicion timeout nothing happens; if it exceeds it the
	// rank is declared dead and fenced even though the process lives.
	RankHang
	// RankRestart models a reboot: the heartbeat stops long enough for
	// the detector to declare the rank dead, then resumes. The restarted
	// process is a zombie from the world's perspective — ULFM semantics
	// fence it out, and every operation it attempts fails.
	RankRestart
)

// rankClassString covers the rank classes for Class.String.
func rankClassString(c Class) (string, bool) {
	switch c {
	case RankCrash:
		return "rank-crash", true
	case RankHang:
		return "rank-hang", true
	case RankRestart:
		return "rank-restart", true
	}
	return "", false
}

// RankFault is one scheduled process-level failure: rank Rank fails with
// Class after it has completed AfterOps application operations. Pause is
// the heartbeat gap for RankHang/RankRestart (ignored for RankCrash).
type RankFault struct {
	Rank     int
	Class    Class
	AfterOps int
	Pause    time.Duration
}

func (f RankFault) String() string {
	return fmt.Sprintf("rank %d: %v after %d ops", f.Rank, f.Class, f.AfterOps)
}

// RankFaultConfig draws a deterministic process-failure schedule for an
// n-rank world. Probabilities are per rank and evaluated in struct
// order against one uniform draw, like Config.
type RankFaultConfig struct {
	// Seed makes the schedule reproducible; zero selects the fixed
	// default seed.
	Seed uint64
	// PCrash, PHang, PRestart are the per-rank probabilities of each
	// class.
	PCrash   float64
	PHang    float64
	PRestart float64
	// MinOps and MaxOps bound the operation index at which a drawn
	// fault fires (uniform in [MinOps, MaxOps]); MaxOps <= MinOps pins
	// the fault at MinOps.
	MinOps int
	MaxOps int
	// Pause is the heartbeat gap injected by RankHang/RankRestart; zero
	// means 50ms.
	Pause time.Duration
	// MaxFailures caps how many ranks fail so the world always keeps
	// survivors; zero means at most n-2 (a shrink needs two live ranks
	// to still be a world worth shrinking).
	MaxFailures int
}

// NewRankSchedule draws the failure schedule for an n-rank world:
// at most MaxFailures entries, sorted by rank. Rank 0 is never drawn —
// tests use it as the orchestrating survivor — but callers may of
// course kill it explicitly.
func NewRankSchedule(cfg RankFaultConfig, n int) []RankFault {
	if n <= 0 {
		return nil
	}
	if cfg.Pause <= 0 {
		cfg.Pause = 50 * time.Millisecond
	}
	maxF := cfg.MaxFailures
	if maxF <= 0 {
		maxF = n - 2
	}
	if maxF > n-1 {
		maxF = n - 1
	}
	rng := NewRand(cfg.Seed)
	var out []RankFault
	for r := 1; r < n && len(out) < maxF; r++ {
		u := rng.Float64()
		var class Class
		switch {
		case u < cfg.PCrash:
			class = RankCrash
		case u < cfg.PCrash+cfg.PHang:
			class = RankHang
		case u < cfg.PCrash+cfg.PHang+cfg.PRestart:
			class = RankRestart
		default:
			continue
		}
		at := cfg.MinOps
		if cfg.MaxOps > cfg.MinOps {
			at += int(rng.Uint64() % uint64(cfg.MaxOps-cfg.MinOps+1))
		}
		out = append(out, RankFault{Rank: r, Class: class, AfterOps: at, Pause: cfg.Pause})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}
