package faults

import (
	"reflect"
	"testing"
	"time"
)

func TestOverloadClassStrings(t *testing.T) {
	for class, want := range map[Class]string{
		MemPressure:   "mem-pressure",
		SlowConsumer:  "slow-consumer",
		DeadlineStorm: "deadline-storm",
	} {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", class, got, want)
		}
	}
}

func TestOverloadScheduleDeterministic(t *testing.T) {
	cfg := OverloadFaultConfig{
		Seed:           7,
		PMemPressure:   0.4,
		PSlowConsumer:  0.3,
		PDeadlineStorm: 0.3,
		MinOps:         10,
		MaxOps:         90,
	}
	a := NewOverloadSchedule(cfg, 6)
	b := NewOverloadSchedule(cfg, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedule not deterministic:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("probability 1.0 drew no faults")
	}
	for i, f := range a {
		if f.AfterOps < cfg.MinOps || f.AfterOps > cfg.MaxOps {
			t.Errorf("fault %d fires at %d, outside [%d, %d]", i, f.AfterOps, cfg.MinOps, cfg.MaxOps)
		}
		if i > 0 && f.AfterOps < a[i-1].AfterOps {
			t.Errorf("schedule not sorted: %v before %v", a[i-1], f)
		}
		if f.Ops <= 0 || f.Budget <= 0 || f.Stall <= 0 || f.Deadline <= 0 {
			t.Errorf("fault %d missing defaults: %+v", i, f)
		}
	}
}

func TestOverloadScheduleCaps(t *testing.T) {
	cfg := OverloadFaultConfig{
		PMemPressure: 1.0, // every shard draws a fault
		MaxFailures:  2,
		Ops:          25,
		Budget:       4 << 20,
		Stall:        time.Millisecond,
		Deadline:     50 * time.Microsecond,
	}
	sched := NewOverloadSchedule(cfg, 8)
	if len(sched) != 2 {
		t.Fatalf("MaxFailures=2 drew %d faults", len(sched))
	}
	for _, f := range sched {
		if f.Budget != 4<<20 || f.Stall != time.Millisecond || f.Deadline != 50*time.Microsecond || f.Ops != 25 {
			t.Errorf("configured knobs not carried: %+v", f)
		}
	}
	if got := NewOverloadSchedule(cfg, 0); got != nil {
		t.Errorf("n=0 schedule = %v, want nil", got)
	}
}
