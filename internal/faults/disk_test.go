package faults

import (
	"testing"
	"time"
)

func TestDiskInjectorDeterministic(t *testing.T) {
	cfg := DiskFaultConfig{Seed: 42, PTear: 0.1, PRot: 0.1, PStall: 0.1}
	a, b := NewDiskInjector(cfg), NewDiskInjector(cfg)
	for i := 0; i < 500; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("op %d: schedules diverge: %+v vs %+v", i, da, db)
		}
	}
	_, inj := a.Counts()
	if inj == 0 {
		t.Fatal("no faults injected at 30% total probability over 500 ops")
	}
}

func TestDiskInjectorClasses(t *testing.T) {
	inj := NewDiskInjector(DiskFaultConfig{Seed: 7, PTear: 0.2, PRot: 0.2, PStall: 0.2})
	seen := map[Class]int{}
	for i := 0; i < 1000; i++ {
		d := inj.Next()
		seen[d.Class]++
		switch d.Class {
		case DiskTear:
			if d.Frac < 0 || d.Frac >= 1 {
				t.Fatalf("tear frac %v out of [0,1)", d.Frac)
			}
		case DiskStall:
			if d.Stall != 2*time.Millisecond {
				t.Fatalf("default stall = %v, want 2ms", d.Stall)
			}
		}
	}
	for _, c := range []Class{None, DiskTear, DiskRot, DiskStall} {
		if seen[c] == 0 {
			t.Errorf("class %v never drawn", c)
		}
	}
	if seen[CrashMidCommit] != 0 {
		t.Errorf("crash drawn without CrashAfterOps")
	}
}

func TestDiskInjectorCrashAfterOps(t *testing.T) {
	inj := NewDiskInjector(DiskFaultConfig{Seed: 3, CrashAfterOps: 5})
	for i := 1; i <= 4; i++ {
		if d := inj.Next(); d.Class != None {
			t.Fatalf("op %d: class %v before crash point", i, d.Class)
		}
		if inj.Crashed() {
			t.Fatalf("crashed before op 5")
		}
	}
	// Op 5 is the kill point; everything after stays dead.
	if d := inj.Next(); d.Class != CrashMidCommit {
		t.Fatalf("op 5: class %v, want crash-mid-commit", d.Class)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() false after the kill point")
	}
	for i := 6; i <= 10; i++ {
		if d := inj.Next(); d.Class != CrashMidCommit {
			t.Fatalf("op %d: class %v, want crash-mid-commit (store stays dead)", i, d.Class)
		}
	}
	if _, inj := inj.Counts(); inj != 1 {
		t.Fatalf("injected = %d, want 1 (the crash counts once)", inj)
	}
}

func TestDiskInjectorMaxInjections(t *testing.T) {
	inj := NewDiskInjector(DiskFaultConfig{Seed: 9, PTear: 1, MaxInjections: 3})
	n := 0
	for i := 0; i < 100; i++ {
		if inj.Next().Class == DiskTear {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("injected %d tears, want 3 (MaxInjections)", n)
	}
}

func TestDiskClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		DiskTear:       "disk-tear",
		DiskRot:        "disk-rot",
		DiskStall:      "disk-stall",
		CrashMidCommit: "crash-mid-commit",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", uint8(c), got, want)
		}
	}
}
