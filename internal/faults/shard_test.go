package faults

import (
	"testing"
	"time"
)

func TestShardScheduleDeterministic(t *testing.T) {
	cfg := ShardFaultConfig{Seed: 7, PCrash: 0.3, PStall: 0.3, PRestart: 0.3, MinOps: 10, MaxOps: 50}
	a := NewShardSchedule(cfg, 6)
	b := NewShardSchedule(cfg, 6)
	if len(a) == 0 {
		t.Fatal("schedule empty at 90% combined probability")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic schedule: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestShardScheduleKeepsSurvivors(t *testing.T) {
	cfg := ShardFaultConfig{PCrash: 1} // every shard wants to die
	for n := 2; n <= 8; n++ {
		sched := NewShardSchedule(cfg, n)
		max := n - 2
		if max < 1 {
			max = 1
		}
		if len(sched) > max {
			t.Fatalf("n=%d: %d failures scheduled, cap is %d", n, len(sched), max)
		}
	}
}

func TestShardScheduleOrderedByFiring(t *testing.T) {
	cfg := ShardFaultConfig{Seed: 3, PCrash: 0.5, PStall: 0.5, MinOps: 0, MaxOps: 100, MaxFailures: 6}
	sched := NewShardSchedule(cfg, 8)
	for i := 1; i < len(sched); i++ {
		if sched[i].AfterOps < sched[i-1].AfterOps {
			t.Fatalf("schedule not sorted by firing op: %v", sched)
		}
	}
}

func TestShardScheduleDefaults(t *testing.T) {
	sched := NewShardSchedule(ShardFaultConfig{PStall: 1, PRestart: 0, MaxFailures: 1}, 4)
	if len(sched) != 1 {
		t.Fatalf("want 1 entry, got %v", sched)
	}
	f := sched[0]
	if f.Class != ShardStall || f.Stall != 250*time.Millisecond || f.Down != 200*time.Millisecond {
		t.Fatalf("defaults not applied: %+v", f)
	}
	if f.Class.String() != "shard-stall" {
		t.Fatalf("String() = %q", f.Class.String())
	}
}
