package faults

import (
	"testing"
	"time"
)

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, PTransient: 0.2, PPersistent: 0.05, PCorrupt: 0.1, PHang: 0.05}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 1000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("decision %d diverged: %v vs %v", i, da, db)
		}
	}
	jobs, injected := a.Counts()
	if jobs != 1000 {
		t.Fatalf("jobs = %d", jobs)
	}
	// ~40% injection rate over 1000 draws: allow a wide band.
	if injected < 300 || injected > 500 {
		t.Fatalf("injected = %d, want ≈400", injected)
	}
}

func TestInjectorRates(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, PTransient: 1.0})
	for i := 0; i < 10; i++ {
		if d := inj.Next(); d.Class != Transient {
			t.Fatalf("draw %d: %v, want transient", i, d.Class)
		}
	}
	clean := NewInjector(Config{Seed: 3})
	for i := 0; i < 10; i++ {
		if d := clean.Next(); d.Class != None {
			t.Fatalf("zero-probability injector injected %v", d.Class)
		}
	}
}

func TestInjectorMaxInjections(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, PPersistent: 1.0, MaxInjections: 3})
	for i := 0; i < 3; i++ {
		if d := inj.Next(); d.Class != Persistent {
			t.Fatalf("draw %d: %v, want persistent", i, d.Class)
		}
	}
	for i := 0; i < 5; i++ {
		if d := inj.Next(); d.Class != None {
			t.Fatalf("injection budget exceeded: %v", d.Class)
		}
	}
}

func TestInjectorHangDelay(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, PHang: 1.0, HangDelay: 7 * time.Millisecond})
	if d := inj.Next(); d.Class != Hang || d.Delay != 7*time.Millisecond {
		t.Fatalf("hang decision = %+v", d)
	}
}

func TestBackoffBounds(t *testing.T) {
	r := NewRand(9)
	base, max := 100*time.Microsecond, 2*time.Millisecond
	prevMid := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		want := base << attempt
		if want > max {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := Backoff(attempt, base, max, r)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
		mid := Backoff(attempt, base, max, nil)
		if mid < prevMid {
			t.Fatalf("deterministic backoff not monotone: %v after %v", mid, prevMid)
		}
		prevMid = mid
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, ProbeEvery: 4})
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("new breaker must be closed")
	}
	// Two failures: still closed.
	b.Failure()
	if b.Failure() {
		t.Fatal("tripped before threshold")
	}
	// A success resets the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("opened after a reset below threshold")
	}
	// Third consecutive failure trips.
	if !b.Failure() {
		t.Fatal("did not trip at threshold")
	}
	if b.State() != StateOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d", b.State(), b.Trips())
	}
	// Open: rejects until the probe slot.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("request %d admitted while open", i)
		}
	}
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted during probe")
	}
	// Failed probe: back to open, full probe countdown again.
	if b.Failure() {
		t.Fatal("failed probe must not count as a new trip")
	}
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatal("admitted while re-opened")
		}
	}
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	// Successful probe: closed again.
	if !b.Success() {
		t.Fatal("probe success did not report recovery")
	}
	if b.State() != StateClosed || b.Recoveries() != 1 {
		t.Fatalf("state=%v recoveries=%d", b.State(), b.Recoveries())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejects")
	}
}

func TestNilBreakerIsClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.State() != StateClosed {
		t.Fatal("nil breaker must behave closed")
	}
	b.Success()
	b.Failure()
	if b.Trips() != 0 || b.Recoveries() != 0 {
		t.Fatal("nil breaker counted transitions")
	}
}
