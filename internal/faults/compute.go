package faults

import "sync"

// Compute-level failure classes: silent data corruption (SDC) in the
// compression kernels themselves. Unlike Corrupt (which flips a bit
// *after* the engine computed its output checksum, so CRC verification
// catches it), these classes corrupt the kernel's product *before* any
// checksum is taken — the corrupted bytes carry a perfectly valid
// digest, and only decode-verification against the source (or a
// scalar-vs-slab differential referee) can tell.
const (
	// KernelFlip flips one bit of a kernel's compressed output — the
	// classic SDC signature of a marginal ALU or a miscompiled SWAR
	// lane producing a single wrong word.
	KernelFlip Class = iota + 80
	// QuantDrift perturbs one byte of the output by ±1 — the
	// off-by-one quantizer-code drift a broken rounding path produces
	// in the SZ3 code stream (and a generic near-miss elsewhere).
	QuantDrift
	// BufferStomp overwrites a span of the output with stale bytes, as
	// if a recycled mempool buffer leaked its previous contents into
	// the result (a missing-barrier / premature-reuse bug).
	BufferStomp
)

// computeClassString covers the compute classes for Class.String.
func computeClassString(c Class) (string, bool) {
	switch c {
	case KernelFlip:
		return "kernel-flip", true
	case QuantDrift:
		return "quant-drift", true
	case BufferStomp:
		return "buffer-stomp", true
	}
	return "", false
}

// ComputeDecision is the injector's verdict for one kernel execution.
// Off/Bit/Span position the corruption; Apply interprets them modulo
// the actual output length.
type ComputeDecision struct {
	Class Class
	// Off selects the corrupted byte offset (modulo the output length).
	Off uint64
	// Bit selects the flipped bit within the byte (KernelFlip).
	Bit uint64
	// Span is the stale-byte run length (BufferStomp).
	Span int
	// Drift is +1 or -1 (QuantDrift).
	Drift int
}

// ComputeFaultConfig draws a deterministic SDC schedule. Probabilities
// are per kernel execution and evaluated in struct order against one
// uniform draw, like Config.
type ComputeFaultConfig struct {
	// Seed makes the schedule reproducible; zero selects the fixed
	// default seed. Each core derives its own independent stream from
	// it, so a fixed seed pins the whole per-core schedule matrix.
	Seed uint64
	// PKernelFlip, PQuantDrift, PBufferStomp are the per-execution
	// probabilities of each class.
	PKernelFlip  float64
	PQuantDrift  float64
	PBufferStomp float64
	// StompSpan is the stale run length for BufferStomp; zero means 16.
	StompSpan int
	// MaxInjections bounds the number of corruptions actually applied
	// across all cores; zero means unlimited. Quarantine/readmit soaks
	// use this to model a unit that goes bad and then recovers.
	MaxInjections int
	// Cores restricts injection to these core IDs when non-nil — a
	// single marginal complex instead of machine-wide decay.
	Cores []int
}

// ComputeInjector hands out per-kernel-execution SDC decisions from
// deterministic per-core schedules. Core IDs are small integers: 0 is
// the serial path / C-Engine complex, 1..N the pipeline worker cores.
// Safe for concurrent use; a nil injector injects nothing.
type ComputeInjector struct {
	mu       sync.Mutex
	cfg      ComputeFaultConfig
	cores    map[int]*Rand
	ops      uint64
	injected uint64
}

// NewComputeInjector builds an injector from cfg.
func NewComputeInjector(cfg ComputeFaultConfig) *ComputeInjector {
	if cfg.StompSpan <= 0 {
		cfg.StompSpan = 16
	}
	return &ComputeInjector{cfg: cfg, cores: make(map[int]*Rand)}
}

// coreRNG returns core's private stream, derived from the seed so every
// core's schedule is independent yet pinned by one number.
func (i *ComputeInjector) coreRNG(core int) *Rand {
	r := i.cores[core]
	if r == nil {
		r = NewRand(i.cfg.Seed ^ (0x9e3779b97f4a7c15 * (uint64(core) + 1)))
		i.cores[core] = r
	}
	return r
}

func (i *ComputeInjector) coreArmed(core int) bool {
	if i.cfg.Cores == nil {
		return true
	}
	for _, c := range i.cfg.Cores {
		if c == core {
			return true
		}
	}
	return false
}

// Next draws the SDC decision for the next kernel execution on core.
func (i *ComputeInjector) Next(core int) ComputeDecision {
	if i == nil {
		return ComputeDecision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	if !i.coreArmed(core) {
		return ComputeDecision{}
	}
	if i.cfg.MaxInjections > 0 && i.injected >= uint64(i.cfg.MaxInjections) {
		return ComputeDecision{}
	}
	rng := i.coreRNG(core)
	u := rng.Float64()
	switch {
	case u < i.cfg.PKernelFlip:
		return ComputeDecision{Class: KernelFlip, Off: rng.Uint64(), Bit: rng.Uint64() % 8}
	case u < i.cfg.PKernelFlip+i.cfg.PQuantDrift:
		drift := 1
		if rng.Uint64()&1 == 1 {
			drift = -1
		}
		return ComputeDecision{Class: QuantDrift, Off: rng.Uint64(), Drift: drift}
	case u < i.cfg.PKernelFlip+i.cfg.PQuantDrift+i.cfg.PBufferStomp:
		return ComputeDecision{Class: BufferStomp, Off: rng.Uint64(), Span: i.cfg.StompSpan}
	}
	return ComputeDecision{}
}

// Apply mutates out in place according to d and reports whether any
// byte actually changed (an empty output cannot be corrupted). Only
// applied corruptions count toward MaxInjections and Counts.
func (i *ComputeInjector) Apply(d ComputeDecision, out []byte) bool {
	if i == nil || d.Class == None || len(out) == 0 {
		return false
	}
	switch d.Class {
	case KernelFlip:
		out[d.Off%uint64(len(out))] ^= 1 << (d.Bit % 8)
	case QuantDrift:
		// Aim at the middle half of the stream — for SZ3 containers
		// that is the packed code section, elsewhere it is an arbitrary
		// payload byte. Either way the digest stays "valid".
		lo := len(out) / 4
		span := len(out) - lo - len(out)/4
		if span <= 0 {
			lo, span = 0, len(out)
		}
		out[lo+int(d.Off%uint64(span))] += byte(d.Drift)
	case BufferStomp:
		start := int(d.Off % uint64(len(out)))
		n := d.Span
		if n <= 0 {
			n = 1
		}
		if start+n > len(out) {
			n = len(out) - start
		}
		for j := 0; j < n; j++ {
			// A recognisable stale-mempool pattern: the 0xA5 poison
			// value xored with the position, as a previous tenant's
			// bytes would read.
			out[start+j] = 0xA5 ^ byte(j)
		}
	default:
		return false
	}
	i.mu.Lock()
	i.injected++
	i.mu.Unlock()
	return true
}

// Counts reports how many kernel executions were seen and how many had
// a corruption applied.
func (i *ComputeInjector) Counts() (ops, injected uint64) {
	if i == nil {
		return 0, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops, i.injected
}
