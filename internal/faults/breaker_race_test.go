package faults

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBreakerHalfOpenSingleProbe hammers an open breaker from many
// goroutines and asserts the half-open contract under concurrency:
// exactly one request is admitted as the probe, everyone else is
// rejected until the probe resolves. Run with -race; a lost update in
// Allow would admit multiple probes at once.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, ProbeEvery: 1})
	if !b.Failure() {
		t.Fatal("breaker did not trip at threshold 1")
	}

	const goroutines = 64
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()

	// ProbeEvery=1 makes the very first open-state request eligible, so
	// the race is maximal: all 64 goroutines compete for the one probe
	// slot.
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d probes admitted concurrently, want exactly 1", got)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state %v after probe admission, want half-open", b.State())
	}

	// The probe's outcome resolves the state for everyone: a failure
	// re-opens (no new trip), and the next round again admits exactly
	// one.
	if b.Failure() {
		t.Fatal("failed probe counted as a fresh trip")
	}
	admitted.Store(0)
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d probes admitted after re-open, want exactly 1", got)
	}
	// A successful probe closes the breaker and everyone flows again.
	if !b.Success() {
		t.Fatal("probe success did not recover the breaker")
	}
	if !b.Allow() || b.State() != StateClosed {
		t.Fatal("breaker not closed after successful probe")
	}
}
