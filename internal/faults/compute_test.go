package faults

import (
	"bytes"
	"testing"
)

func TestComputeInjectorDeterministic(t *testing.T) {
	draw := func() []ComputeDecision {
		inj := NewComputeInjector(ComputeFaultConfig{
			Seed: 7, PKernelFlip: 0.2, PQuantDrift: 0.2, PBufferStomp: 0.2,
		})
		var ds []ComputeDecision
		for core := 0; core < 3; core++ {
			for op := 0; op < 50; op++ {
				ds = append(ds, inj.Next(core))
			}
		}
		return ds
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at draw %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestComputeInjectorPerCoreSchedules(t *testing.T) {
	inj := NewComputeInjector(ComputeFaultConfig{Seed: 3, PKernelFlip: 0.5})
	var c0, c1 []ComputeDecision
	for op := 0; op < 40; op++ {
		c0 = append(c0, inj.Next(0))
		c1 = append(c1, inj.Next(1))
	}
	same := true
	for i := range c0 {
		if c0[i] != c1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("cores 0 and 1 drew identical schedules — per-core streams must be independent")
	}
}

func TestComputeInjectorCoreFilter(t *testing.T) {
	inj := NewComputeInjector(ComputeFaultConfig{Seed: 5, PKernelFlip: 1, Cores: []int{2}})
	for op := 0; op < 20; op++ {
		if d := inj.Next(1); d.Class != None {
			t.Fatal("unarmed core drew a fault")
		}
	}
	if d := inj.Next(2); d.Class != KernelFlip {
		t.Fatal("armed core must draw with P=1")
	}
}

func TestComputeInjectorApply(t *testing.T) {
	inj := NewComputeInjector(ComputeFaultConfig{})
	base := bytes.Repeat([]byte{0x11}, 64)

	flip := append([]byte(nil), base...)
	if !inj.Apply(ComputeDecision{Class: KernelFlip, Off: 9, Bit: 3}, flip) {
		t.Fatal("apply reported no mutation")
	}
	diff := 0
	for i := range flip {
		if flip[i] != base[i] {
			diff++
			if flip[i]^base[i] != 1<<3 {
				t.Errorf("kernel-flip changed more than one bit: %02x -> %02x", base[i], flip[i])
			}
		}
	}
	if diff != 1 {
		t.Errorf("kernel-flip touched %d bytes, want 1", diff)
	}

	drift := append([]byte(nil), base...)
	inj.Apply(ComputeDecision{Class: QuantDrift, Off: 5, Drift: -1}, drift)
	diff = 0
	for i := range drift {
		if drift[i] != base[i] {
			diff++
			if drift[i] != base[i]-1 {
				t.Errorf("quant-drift is not off-by-one: %02x -> %02x", base[i], drift[i])
			}
		}
	}
	if diff != 1 {
		t.Errorf("quant-drift touched %d bytes, want 1", diff)
	}

	stomp := append([]byte(nil), base...)
	inj.Apply(ComputeDecision{Class: BufferStomp, Off: 60, Span: 16}, stomp)
	diff = 0
	for i := range stomp {
		if stomp[i] != base[i] {
			diff++
		}
	}
	if diff == 0 || diff > 16 {
		t.Errorf("buffer-stomp touched %d bytes, want 1..16 clamped at the end", diff)
	}

	// Empty output cannot be corrupted and must not count.
	if inj.Apply(ComputeDecision{Class: KernelFlip}, nil) {
		t.Error("apply on empty output reported a mutation")
	}
	if _, injected := inj.Counts(); injected != 3 {
		t.Errorf("injected = %d, want 3", injected)
	}
}

func TestComputeInjectorMaxInjections(t *testing.T) {
	inj := NewComputeInjector(ComputeFaultConfig{Seed: 9, PKernelFlip: 1, MaxInjections: 2})
	buf := make([]byte, 32)
	fired := 0
	for op := 0; op < 30; op++ {
		if d := inj.Next(0); d.Class != None {
			inj.Apply(d, buf)
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("MaxInjections=2 fired %d times", fired)
	}
}

func TestComputeInjectorNilSafety(t *testing.T) {
	var inj *ComputeInjector
	if d := inj.Next(0); d.Class != None {
		t.Error("nil injector drew a fault")
	}
	if inj.Apply(ComputeDecision{Class: KernelFlip}, make([]byte, 8)) {
		t.Error("nil injector applied a fault")
	}
	if ops, injected := inj.Counts(); ops+injected != 0 {
		t.Error("nil injector counted something")
	}
}

func TestComputeClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		KernelFlip: "kernel-flip", QuantDrift: "quant-drift", BufferStomp: "buffer-stomp",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}
