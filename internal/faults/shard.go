package faults

import (
	"fmt"
	"sort"
	"time"
)

// Fleet-level (shard) failure classes. These sit above even the rank
// classes: an entire pedald instance — one shard of the compression
// fleet — crashes, stalls, or reboots, and the fleet router's failover
// and health plane, not any single client, is what must absorb it.
const (
	// ShardCrash kills the shard's daemon abruptly: its listener closes,
	// in-flight requests fail, and it never returns. Clients see dial
	// failures and broken streams until the router ejects it.
	ShardCrash Class = iota + 48
	// ShardStall wedges the shard without killing it: the daemon accepts
	// connections and answers pings but every request takes Stall to
	// execute. The slow-shard case is the nastier one — only latency
	// policy (hedging, degraded ejection), not connectivity, notices.
	ShardStall
	// ShardRestart models a rolling reboot: the daemon goes down hard
	// for Down, then comes back healthy on the same address. The router
	// must eject it while dark and readmit it via half-open probes.
	ShardRestart
)

// shardClassString covers the shard classes for Class.String.
func shardClassString(c Class) (string, bool) {
	switch c {
	case ShardCrash:
		return "shard-crash", true
	case ShardStall:
		return "shard-stall", true
	case ShardRestart:
		return "shard-restart", true
	}
	return "", false
}

// ShardFault is one scheduled fleet-level failure: shard Shard fails
// with Class after the fleet has completed AfterOps operations. Stall
// is the per-request execution delay for ShardStall; Down is the
// outage duration for ShardRestart (both ignored by the other classes).
type ShardFault struct {
	Shard    int
	Class    Class
	AfterOps int
	Stall    time.Duration
	Down     time.Duration
}

func (f ShardFault) String() string {
	return fmt.Sprintf("shard %d: %v after %d ops", f.Shard, f.Class, f.AfterOps)
}

// ShardFaultConfig draws a deterministic shard-failure schedule for an
// n-shard fleet. Probabilities are per shard and evaluated in struct
// order against one uniform draw, like Config and RankFaultConfig.
type ShardFaultConfig struct {
	// Seed makes the schedule reproducible; zero selects the fixed
	// default seed.
	Seed uint64
	// PCrash, PStall, PRestart are the per-shard probabilities of each
	// class.
	PCrash   float64
	PStall   float64
	PRestart float64
	// MinOps and MaxOps bound the fleet operation index at which a drawn
	// fault fires (uniform in [MinOps, MaxOps]); MaxOps <= MinOps pins
	// the fault at MinOps.
	MinOps int
	MaxOps int
	// Stall is the per-request delay injected by ShardStall; zero means
	// 250ms.
	Stall time.Duration
	// Down is the outage injected by ShardRestart; zero means 200ms.
	Down time.Duration
	// MaxFailures caps how many shards fail so the ring always keeps
	// live successors for failover; zero means at most n-2.
	MaxFailures int
}

// NewShardSchedule draws the failure schedule for an n-shard fleet: at
// most MaxFailures entries, sorted by firing order (AfterOps, then
// shard). Unlike rank schedules every shard may be drawn — the fleet
// has no orchestrating shard 0; the router itself is the survivor.
func NewShardSchedule(cfg ShardFaultConfig, n int) []ShardFault {
	if n <= 0 {
		return nil
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 250 * time.Millisecond
	}
	if cfg.Down <= 0 {
		cfg.Down = 200 * time.Millisecond
	}
	maxF := cfg.MaxFailures
	if maxF <= 0 {
		maxF = n - 2
	}
	if maxF > n-1 {
		maxF = n - 1
	}
	rng := NewRand(cfg.Seed)
	var out []ShardFault
	for s := 0; s < n && len(out) < maxF; s++ {
		u := rng.Float64()
		var class Class
		switch {
		case u < cfg.PCrash:
			class = ShardCrash
		case u < cfg.PCrash+cfg.PStall:
			class = ShardStall
		case u < cfg.PCrash+cfg.PStall+cfg.PRestart:
			class = ShardRestart
		default:
			continue
		}
		at := cfg.MinOps
		if cfg.MaxOps > cfg.MinOps {
			at += int(rng.Uint64() % uint64(cfg.MaxOps-cfg.MinOps+1))
		}
		out = append(out, ShardFault{
			Shard: s, Class: class, AfterOps: at,
			Stall: cfg.Stall, Down: cfg.Down,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AfterOps != out[j].AfterOps {
			return out[i].AfterOps < out[j].AfterOps
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
