package faults

import (
	"fmt"
	"sort"
	"time"
)

// Overload failure classes. Unlike the crash/corruption domains these
// faults break no component outright — they starve the system of
// memory, drain speed, or time, and what must absorb them is the
// overload machinery: pool budgets, deadline propagation, and the
// service brownout ladder.
const (
	// MemPressure squeezes the governed memory-pool budget to a fraction
	// of its configured value for a while, so request staging draws
	// start failing with ErrMemPressure and the daemon must convert the
	// shortage into cooperative backpressure (busy + Retry-After)
	// instead of OOM-ing or hanging.
	MemPressure Class = iota + 96
	// SlowConsumer stalls every request a daemon executes (a consumer
	// that drains results slower than they are produced), driving queue
	// depth and pool occupancy up until the brownout ladder engages.
	SlowConsumer
	// DeadlineStorm floods the daemon with requests carrying deadlines
	// too tight to meet, so nearly all of them must be abandoned at a
	// checkpoint with a typed deadline error — and the abandoned work
	// must release every pooled buffer it held.
	DeadlineStorm
)

// overloadClassString covers the overload classes for Class.String.
func overloadClassString(c Class) (string, bool) {
	switch c {
	case MemPressure:
		return "mem-pressure", true
	case SlowConsumer:
		return "slow-consumer", true
	case DeadlineStorm:
		return "deadline-storm", true
	}
	return "", false
}

// OverloadFault is one scheduled overload episode: shard Shard enters
// the condition after the harness has completed AfterOps operations and
// leaves it Ops operations later. Budget is the squeezed pool budget
// (MemPressure), Stall the per-request delay (SlowConsumer), and
// Deadline the per-request budget forced on clients (DeadlineStorm);
// each field is ignored by the other classes.
type OverloadFault struct {
	Shard    int
	Class    Class
	AfterOps int
	// Ops is the episode length in completed operations; the harness
	// restores the squeezed resource after this many further ops.
	Ops      int
	Budget   int64
	Stall    time.Duration
	Deadline time.Duration
}

func (f OverloadFault) String() string {
	return fmt.Sprintf("shard %d: %v after %d ops for %d ops", f.Shard, f.Class, f.AfterOps, f.Ops)
}

// OverloadFaultConfig draws a deterministic overload schedule for an
// n-shard fleet. Probabilities are per shard and evaluated in struct
// order against one uniform draw, like the other schedule configs.
type OverloadFaultConfig struct {
	// Seed makes the schedule reproducible; zero selects the fixed
	// default seed.
	Seed uint64
	// PMemPressure, PSlowConsumer, PDeadlineStorm are the per-shard
	// probabilities of each class.
	PMemPressure   float64
	PSlowConsumer  float64
	PDeadlineStorm float64
	// MinOps and MaxOps bound the operation index at which a drawn fault
	// fires (uniform in [MinOps, MaxOps]); MaxOps <= MinOps pins it.
	MinOps int
	MaxOps int
	// Ops is the episode length; zero means 40 operations.
	Ops int
	// Budget is the squeezed pool budget injected by MemPressure; zero
	// means 1 MiB.
	Budget int64
	// Stall is the per-request delay injected by SlowConsumer; zero
	// means 5ms.
	Stall time.Duration
	// Deadline is the per-request budget injected by DeadlineStorm; zero
	// means 1µs (tight enough that essentially every request must be
	// abandoned at its first checkpoint).
	Deadline time.Duration
	// MaxFailures caps how many shards are squeezed at once so the
	// fleet keeps healthy capacity; zero means at most n-1.
	MaxFailures int
}

// NewOverloadSchedule draws the overload schedule for an n-shard fleet:
// at most MaxFailures entries, sorted by firing order (AfterOps, then
// shard).
func NewOverloadSchedule(cfg OverloadFaultConfig, n int) []OverloadFault {
	if n <= 0 {
		return nil
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 1 << 20
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 5 * time.Millisecond
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = time.Microsecond
	}
	maxF := cfg.MaxFailures
	if maxF <= 0 {
		maxF = n - 1
	}
	if maxF > n {
		maxF = n
	}
	rng := NewRand(cfg.Seed)
	var out []OverloadFault
	for s := 0; s < n && len(out) < maxF; s++ {
		u := rng.Float64()
		var class Class
		switch {
		case u < cfg.PMemPressure:
			class = MemPressure
		case u < cfg.PMemPressure+cfg.PSlowConsumer:
			class = SlowConsumer
		case u < cfg.PMemPressure+cfg.PSlowConsumer+cfg.PDeadlineStorm:
			class = DeadlineStorm
		default:
			continue
		}
		at := cfg.MinOps
		if cfg.MaxOps > cfg.MinOps {
			at += int(rng.Uint64() % uint64(cfg.MaxOps-cfg.MinOps+1))
		}
		out = append(out, OverloadFault{
			Shard: s, Class: class, AfterOps: at, Ops: cfg.Ops,
			Budget: cfg.Budget, Stall: cfg.Stall, Deadline: cfg.Deadline,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AfterOps != out[j].AfterOps {
			return out[i].AfterOps < out[j].AfterOps
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
