package faults

import (
	"fmt"
	"sync"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// Breaker states. Closed admits everything; Open rejects (degrading
// callers to their fallback path) while periodically promoting one
// request to a HalfOpen probe whose outcome decides the next state.
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// BreakerConfig tunes the state machine.
type BreakerConfig struct {
	// Threshold is the number of consecutive hard failures that opens
	// the breaker; zero means 3.
	Threshold int
	// ProbeEvery admits one half-open probe per this many rejected
	// requests while open; zero means 8. Probing by request count (not
	// wall time) keeps the simulation deterministic.
	ProbeEvery int
}

// Breaker is a per-device circuit breaker over the C-Engine path. The
// paper's capability fallback moves unsupported operations to the SoC
// statically; the breaker applies the same degradation dynamically when
// a *supported* path starts failing at runtime, and re-closes once a
// probe succeeds.
type Breaker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	state       BreakerState
	consecFails int
	sinceOpen   int
	trips       uint64
	recoveries  uint64
}

// NewBreaker builds a closed breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 8
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether the next engine request may proceed. While open
// it rejects, except that every ProbeEvery-th request is admitted as a
// half-open probe; the probe's Success or Failure resolves the state.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		// One probe in flight at a time.
		return false
	default: // StateOpen
		b.sinceOpen++
		if b.sinceOpen >= b.cfg.ProbeEvery {
			b.state = StateHalfOpen
			b.sinceOpen = 0
			return true
		}
		return false
	}
}

// Success records a completed engine operation. It reports whether this
// success closed an open breaker (a recovered engine).
func (b *Breaker) Success() (recovered bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == StateHalfOpen {
		b.state = StateClosed
		b.recoveries++
		return true
	}
	return false
}

// Failure records a hard engine failure. It reports whether this failure
// tripped the breaker open.
func (b *Breaker) Failure() (tripped bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		// Failed probe: back to open, restart the probe countdown.
		b.state = StateOpen
		b.sinceOpen = 0
		return false
	case StateOpen:
		return false
	default: // StateClosed
		b.consecFails++
		if b.consecFails >= b.cfg.Threshold {
			b.state = StateOpen
			b.sinceOpen = 0
			b.trips++
			return true
		}
		return false
	}
}

// State reports the current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips and Recoveries report lifetime transition counts.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) Recoveries() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recoveries
}
