package faults

import (
	"sync"
	"time"
)

// Storage-level failure classes. These model what a disk (or the kernel
// above it) does to a checkpoint store: writes that land only partially,
// bits that rot silently after a successful write, I/O that stalls, and
// the process dying mid-commit with the store in whatever state the last
// completed syscall left it.
const (
	// DiskTear truncates one write: only a prefix of the buffer reaches
	// the file, the way a power cut mid-write leaves a torn page. The
	// syscall still "succeeds", so only digest verification catches it.
	DiskTear Class = iota + 64
	// DiskRot flips one bit of a byte range after it was durably
	// written — silent media decay that no write-path check can see;
	// only a scrub or a read-time digest mismatch detects it.
	DiskRot
	// DiskStall delays one I/O operation, modelling a device that went
	// away for a queue flush or a remapped-sector retry.
	DiskStall
	// CrashMidCommit kills the writer at a syscall boundary: the
	// triggering write is torn and every later mutation fails with a
	// crashed-store error. Restart sees exactly the bytes that were
	// durable at the kill point — the invariant a two-phase commit must
	// survive at *every* possible kill point.
	CrashMidCommit
)

// diskClassString covers the disk classes for Class.String.
func diskClassString(c Class) (string, bool) {
	switch c {
	case DiskTear:
		return "disk-tear", true
	case DiskRot:
		return "disk-rot", true
	case DiskStall:
		return "disk-stall", true
	case CrashMidCommit:
		return "crash-mid-commit", true
	}
	return "", false
}

// DiskDecision is the injector's verdict for one storage operation.
type DiskDecision struct {
	Class Class
	// Stall is the injected delay (DiskStall only).
	Stall time.Duration
	// Frac is the fraction of the buffer that lands before a tear
	// (DiskTear and CrashMidCommit), in [0, 1).
	Frac float64
	// Bit selects the flipped bit for DiskRot, taken modulo the number
	// of bits in the target range.
	Bit uint64
}

// DiskFaultConfig draws a deterministic storage-failure schedule.
// Probabilities are per mutating operation and evaluated in struct
// order against one uniform draw, like Config.
type DiskFaultConfig struct {
	// Seed makes the schedule reproducible; zero selects the fixed
	// default seed.
	Seed uint64
	// PTear, PRot, PStall are the per-operation probabilities of each
	// class.
	PTear  float64
	PRot   float64
	PStall float64
	// CrashAfterOps, when positive, fires CrashMidCommit at the Nth
	// mutating operation (1-based): that op tears and every later one
	// fails. The crash-sweep test iterates this over every syscall index
	// of a commit to prove atomicity at all kill points.
	CrashAfterOps int
	// Stall is the delay injected by DiskStall; zero means 2ms.
	Stall time.Duration
	// MaxInjections bounds the number of injected tear/rot/stall faults
	// (the crash, once armed, always fires); zero means unlimited.
	MaxInjections int
}

// DiskInjector hands out per-operation storage fault decisions from a
// deterministic sequence. Safe for concurrent use.
type DiskInjector struct {
	mu       sync.Mutex
	cfg      DiskFaultConfig
	rng      Rand
	ops      uint64
	injected uint64
	crashed  bool
}

// NewDiskInjector builds an injector from cfg. A nil injector (or a
// zero config) injects nothing.
func NewDiskInjector(cfg DiskFaultConfig) *DiskInjector {
	if cfg.Stall <= 0 {
		cfg.Stall = 2 * time.Millisecond
	}
	return &DiskInjector{cfg: cfg, rng: *NewRand(cfg.Seed)}
}

// Next draws the fault decision for the next mutating storage operation.
func (i *DiskInjector) Next() DiskDecision {
	if i == nil {
		return DiskDecision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	if i.crashed || (i.cfg.CrashAfterOps > 0 && i.ops >= uint64(i.cfg.CrashAfterOps)) {
		first := !i.crashed
		i.crashed = true
		d := DiskDecision{Class: CrashMidCommit}
		if first {
			i.injected++
			d.Frac = i.rng.Float64()
		}
		return d
	}
	if i.cfg.MaxInjections > 0 && i.injected >= uint64(i.cfg.MaxInjections) {
		return DiskDecision{}
	}
	u := i.rng.Float64()
	switch {
	case u < i.cfg.PTear:
		i.injected++
		return DiskDecision{Class: DiskTear, Frac: i.rng.Float64()}
	case u < i.cfg.PTear+i.cfg.PRot:
		i.injected++
		return DiskDecision{Class: DiskRot, Bit: i.rng.Uint64()}
	case u < i.cfg.PTear+i.cfg.PRot+i.cfg.PStall:
		i.injected++
		return DiskDecision{Class: DiskStall, Stall: i.cfg.Stall}
	}
	return DiskDecision{}
}

// Crashed reports whether the CrashMidCommit trigger has fired.
func (i *DiskInjector) Crashed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Counts reports how many operations were seen and how many received a
// fault.
func (i *DiskInjector) Counts() (ops, injected uint64) {
	if i == nil {
		return 0, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops, i.injected
}
