package faults

import (
	"testing"
	"time"
)

func TestNetInjectorDeterministic(t *testing.T) {
	cfg := NetConfig{Seed: 7, PDrop: 0.1, PDuplicate: 0.1, PReorder: 0.1, PCorrupt: 0.1, PDelay: 0.1}
	a, b := NewNetInjector(cfg), NewNetInjector(cfg)
	for i := 0; i < 2000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("frame %d: %v vs %v", i, da, db)
		}
	}
	frames, injected := a.Counts()
	if frames != 2000 {
		t.Fatalf("frames = %d", frames)
	}
	// 50% aggregate probability over 2000 draws: expect roughly 1000.
	if injected < 800 || injected > 1200 {
		t.Fatalf("injected = %d, want ≈1000", injected)
	}
}

func TestNetInjectorClassMix(t *testing.T) {
	inj := NewNetInjector(NetConfig{Seed: 11, PDrop: 0.2, PCorrupt: 0.2, PDelay: 0.2})
	seen := map[NetClass]int{}
	for i := 0; i < 3000; i++ {
		d := inj.Next()
		seen[d.Class]++
		if d.Class == NetDelay {
			if d.Delay <= 0 || d.Delay > 200*time.Microsecond {
				t.Fatalf("delay %v out of default bound", d.Delay)
			}
		}
		if d.Class != NetNone && d.Class != NetDelay && d.Class == NetCorrupt && d.Bits == 0 {
			t.Fatal("corrupt decision without detail bits")
		}
	}
	for _, c := range []NetClass{NetDrop, NetCorrupt, NetDelay} {
		if seen[c] == 0 {
			t.Errorf("class %v never drawn", c)
		}
	}
	if seen[NetDuplicate] != 0 || seen[NetReorder] != 0 {
		t.Error("zero-probability class drawn")
	}
}

func TestNetInjectorMaxInjections(t *testing.T) {
	inj := NewNetInjector(NetConfig{Seed: 3, PDrop: 1.0, MaxInjections: 5})
	faultsSeen := 0
	for i := 0; i < 100; i++ {
		if inj.Next().Class != NetNone {
			faultsSeen++
		}
	}
	if faultsSeen != 5 {
		t.Fatalf("injected %d faults, want 5", faultsSeen)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 64; stream++ {
		s := DeriveSeed(42, stream)
		if seen[s] {
			t.Fatalf("stream %d collides", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 1) != DeriveSeed(42, 1) {
		t.Fatal("DeriveSeed not deterministic")
	}
}
