// Package faults provides deterministic fault injection and generic
// resilience primitives for the simulated C-Engine data path.
//
// Real DOCA work queues report job failures through completion statuses:
// an engine can reject a submission (queue full), fail a job transiently
// (bus glitch, ECC retry), fail it persistently (engine wedged), stall
// (head-of-line hang), or — worst of all — complete "successfully" with
// corrupt output. The Injector reproduces all five classes from a seeded
// PRNG so every failure schedule is replayable in tests; the Breaker and
// Backoff helpers are the corresponding recovery machinery used by
// internal/doca and internal/core.
package faults

import (
	"fmt"
	"sync"
	"time"
)

// Class is the failure class injected into one job.
type Class uint8

// Failure classes.
const (
	// None leaves the job untouched.
	None Class = iota
	// Transient fails the job with a retryable error; an immediate
	// resubmission may succeed.
	Transient
	// Persistent fails the job with a hard error; retrying is futile
	// until the engine recovers.
	Persistent
	// Corrupt lets the job "succeed" but flips bits in its output, so
	// only checksum verification catches it.
	Corrupt
	// QueueFull rejects the job at submission time, modelling a busy
	// work queue (EAGAIN).
	QueueFull
	// Hang stalls the worker for Delay before executing, modelling a
	// latency spike that only a wait deadline can bound.
	Hang
	// Stall swallows the job: the engine accepts it and never completes
	// it, the way a firmware wedge loses a descriptor. Only a watchdog
	// tracking submit timestamps can recover the caller.
	Stall
	// Wedge freezes the engine's queue drain entirely: the job and
	// everything submitted behind it sit undrained until the engine is
	// hot-reset. This is the whole-engine failure mode of a wedged
	// firmware state machine.
	Wedge
	// ResetFail fails a hot-reset attempt (the firmware refuses to come
	// back); it is drawn per reset attempt via NextReset, never per job.
	ResetFail
)

func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	case Corrupt:
		return "corrupt"
	case QueueFull:
		return "queue-full"
	case Hang:
		return "hang"
	case Stall:
		return "stall"
	case Wedge:
		return "wedge"
	case ResetFail:
		return "reset-fail"
	default:
		if s, ok := rankClassString(c); ok {
			return s
		}
		if s, ok := shardClassString(c); ok {
			return s
		}
		if s, ok := diskClassString(c); ok {
			return s
		}
		if s, ok := computeClassString(c); ok {
			return s
		}
		if s, ok := overloadClassString(c); ok {
			return s
		}
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Decision is the injector's verdict for one job.
type Decision struct {
	Class Class
	// Delay is the injected stall duration (Hang class only).
	Delay time.Duration
}

// Config sets per-job injection probabilities. The probabilities are
// evaluated in struct order against one uniform draw, so their sum must
// not exceed 1; the remainder is the no-fault case.
type Config struct {
	// Seed makes the schedule reproducible; zero selects a fixed
	// default seed (injection stays deterministic either way).
	Seed uint64
	// PTransient, PPersistent, PCorrupt, PQueueFull, PHang, PStall,
	// PWedge are the per-job probabilities of each failure class.
	PTransient  float64
	PPersistent float64
	PCorrupt    float64
	PQueueFull  float64
	PHang       float64
	PStall      float64
	PWedge      float64
	// PResetFail is the per-attempt probability that an engine hot-reset
	// fails (drawn by NextReset, independent of the per-job schedule and
	// of MaxInjections — a wedged firmware does not heal just because
	// the job fault budget ran out).
	PResetFail float64
	// HangDelay is the stall injected by the Hang class; zero means
	// 20ms.
	HangDelay time.Duration
	// MaxInjections bounds the total number of injected faults; zero
	// means unlimited. Tests use it to model an engine that fails for a
	// while and then recovers.
	MaxInjections int
}

// Injector hands out per-job fault decisions from a deterministic
// sequence. It is safe for concurrent use; concurrency makes the
// job→decision assignment racy, but the decision *sequence* stays fixed
// by the seed.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      Rand
	jobs     uint64
	injected uint64
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) *Injector {
	if cfg.HangDelay <= 0 {
		cfg.HangDelay = 20 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: *NewRand(cfg.Seed)}
}

// Next draws the fault decision for the next job.
func (i *Injector) Next() Decision {
	if i == nil {
		return Decision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.jobs++
	if i.cfg.MaxInjections > 0 && i.injected >= uint64(i.cfg.MaxInjections) {
		return Decision{}
	}
	u := i.rng.Float64()
	for _, c := range []struct {
		p     float64
		class Class
	}{
		{i.cfg.PTransient, Transient},
		{i.cfg.PPersistent, Persistent},
		{i.cfg.PCorrupt, Corrupt},
		{i.cfg.PQueueFull, QueueFull},
		{i.cfg.PHang, Hang},
		{i.cfg.PStall, Stall},
		{i.cfg.PWedge, Wedge},
	} {
		if u < c.p {
			i.injected++
			d := Decision{Class: c.class}
			if c.class == Hang {
				d.Delay = i.cfg.HangDelay
			}
			return d
		}
		u -= c.p
	}
	return Decision{}
}

// NextReset draws the verdict for one engine hot-reset attempt: a
// Decision with Class ResetFail when the attempt must fail, None when
// the reset succeeds. The draw shares the injector's PRNG so the whole
// failure schedule (jobs and resets) replays from one seed.
func (i *Injector) NextReset() Decision {
	if i == nil {
		return Decision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rng.Float64() < i.cfg.PResetFail {
		i.injected++
		return Decision{Class: ResetFail}
	}
	return Decision{}
}

// Counts reports how many jobs were seen and how many received a fault.
func (i *Injector) Counts() (jobs, injected uint64) {
	if i == nil {
		return 0, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.jobs, i.injected
}

// Rand is a tiny deterministic PRNG (SplitMix64). It exists so fault
// schedules and retry jitter never depend on global randomness and
// replay exactly across runs.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero selects a fixed
// default seed).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(uint64(1)<<53)
}

// Backoff returns the delay before retry attempt (0-based): exponential
// growth from base capped at max, with jitter over the upper half of the
// interval so concurrent retriers decorrelate. A nil r yields the
// deterministic midpoint.
func Backoff(attempt int, base, max time.Duration, r *Rand) time.Duration {
	if base <= 0 {
		base = 50 * time.Microsecond
	}
	if max <= 0 {
		max = 5 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if r == nil {
		return d/2 + d/4
	}
	return d/2 + time.Duration(r.Float64()*float64(d/2))
}
