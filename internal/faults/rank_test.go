package faults

import (
	"reflect"
	"testing"
	"time"
)

func TestRankScheduleDeterministic(t *testing.T) {
	cfg := RankFaultConfig{Seed: 7, PCrash: 0.3, PHang: 0.2, PRestart: 0.2, MinOps: 2, MaxOps: 9}
	a := NewRankSchedule(cfg, 8)
	b := NewRankSchedule(cfg, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := NewRankSchedule(RankFaultConfig{Seed: 8, PCrash: 0.3, PHang: 0.2, PRestart: 0.2, MinOps: 2, MaxOps: 9}, 8)
	if reflect.DeepEqual(a, c) && len(a) > 0 {
		t.Fatalf("different seeds produced identical non-empty schedules: %v", a)
	}
}

func TestRankScheduleBounds(t *testing.T) {
	// Certain failure for every rank: the cap must still leave survivors.
	cfg := RankFaultConfig{Seed: 3, PCrash: 1.0, MinOps: 1, MaxOps: 4}
	for n := 2; n <= 10; n++ {
		sch := NewRankSchedule(cfg, n)
		max := n - 2
		if max < 0 {
			max = 0
		}
		if len(sch) > max {
			t.Fatalf("n=%d: %d failures exceeds default cap %d", n, len(sch), max)
		}
		for _, f := range sch {
			if f.Rank <= 0 || f.Rank >= n {
				t.Fatalf("n=%d: fault on invalid rank %d", n, f.Rank)
			}
			if f.Class != RankCrash {
				t.Fatalf("PCrash=1 drew class %v", f.Class)
			}
			if f.AfterOps < cfg.MinOps || f.AfterOps > cfg.MaxOps {
				t.Fatalf("AfterOps %d outside [%d,%d]", f.AfterOps, cfg.MinOps, cfg.MaxOps)
			}
			if f.Pause <= 0 {
				t.Fatalf("zero Pause not defaulted")
			}
		}
	}
	if sch := NewRankSchedule(cfg, 0); sch != nil {
		t.Fatalf("n=0 produced schedule %v", sch)
	}
}

func TestRankScheduleExplicitCap(t *testing.T) {
	cfg := RankFaultConfig{Seed: 11, PCrash: 0.4, PHang: 0.3, PRestart: 0.3, MaxFailures: 2, Pause: 5 * time.Millisecond}
	sch := NewRankSchedule(cfg, 12)
	if len(sch) > 2 {
		t.Fatalf("MaxFailures=2 but got %d faults", len(sch))
	}
	for _, f := range sch {
		if f.Pause != 5*time.Millisecond {
			t.Fatalf("explicit Pause not propagated: %v", f.Pause)
		}
	}
}

func TestRankClassStrings(t *testing.T) {
	for _, tc := range []struct {
		c    Class
		want string
	}{
		{RankCrash, "rank-crash"}, {RankHang, "rank-hang"}, {RankRestart, "rank-restart"},
	} {
		if got := tc.c.String(); got != tc.want {
			t.Fatalf("%d.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}
