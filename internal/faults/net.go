package faults

import (
	"fmt"
	"sync"
	"time"
)

// NetClass is the network fault class injected into one transport frame.
// Where Class models a C-Engine work queue misbehaving, NetClass models
// the fabric between two DPUs misbehaving: real BlueField deployments see
// dropped, duplicated, reordered, bit-flipped and late frames, and the
// reliability sublayer (internal/transport) must recover all of them.
type NetClass uint8

// Network fault classes.
const (
	// NetNone delivers the frame untouched.
	NetNone NetClass = iota
	// NetDrop silently discards the frame (congestion loss, switch
	// buffer overflow). Only retransmission recovers it.
	NetDrop
	// NetDuplicate delivers the frame twice (retransmit races, routing
	// flaps). The receiver must deduplicate by sequence number.
	NetDuplicate
	// NetReorder holds the frame back so a later frame overtakes it
	// (multipath, adaptive routing). Sequence numbers restore order.
	NetReorder
	// NetCorrupt flips bits in the frame (link-level bit errors past the
	// PHY FCS). Only end-to-end CRC verification catches it.
	NetCorrupt
	// NetDelay adds Delay of virtual latency to the frame (incast
	// queueing, a congested uplink). Data is intact, just late.
	NetDelay
)

func (c NetClass) String() string {
	switch c {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetDuplicate:
		return "duplicate"
	case NetReorder:
		return "reorder"
	case NetCorrupt:
		return "corrupt"
	case NetDelay:
		return "delay"
	default:
		return fmt.Sprintf("NetClass(%d)", uint8(c))
	}
}

// NetDecision is the injector's verdict for one frame.
type NetDecision struct {
	Class NetClass
	// Delay is the injected virtual latency (NetDelay class only).
	Delay time.Duration
	// Bits is a deterministic random value the consumer uses to derive
	// fault details (which bytes to corrupt) without touching any global
	// randomness.
	Bits uint64
}

// NetConfig sets per-frame injection probabilities. Like Config, the
// probabilities are evaluated in struct order against one uniform draw,
// so their sum must not exceed 1; the remainder is the no-fault case.
type NetConfig struct {
	// Seed makes the schedule reproducible; zero selects a fixed default
	// seed (injection stays deterministic either way).
	Seed uint64
	// PDrop, PDuplicate, PReorder, PCorrupt, PDelay are the per-frame
	// probabilities of each fault class.
	PDrop      float64
	PDuplicate float64
	PReorder   float64
	PCorrupt   float64
	PDelay     float64
	// DelayMax bounds the injected virtual latency of the NetDelay
	// class; zero means 200µs. The actual delay is a deterministic
	// uniform draw in (0, DelayMax].
	DelayMax time.Duration
	// MaxInjections bounds the total number of injected faults; zero
	// means unlimited. Tests use it to model a link that flaps for a
	// while and then stabilises.
	MaxInjections int
}

// NetInjector hands out per-frame fault decisions from a deterministic
// sequence, the fabric-side sibling of Injector. Safe for concurrent
// use; concurrency makes the frame→decision assignment racy, but the
// decision *sequence* stays fixed by the seed.
type NetInjector struct {
	mu       sync.Mutex
	cfg      NetConfig
	rng      Rand
	frames   uint64
	injected uint64
}

// NewNetInjector builds a network fault injector from cfg.
func NewNetInjector(cfg NetConfig) *NetInjector {
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 200 * time.Microsecond
	}
	return &NetInjector{cfg: cfg, rng: *NewRand(cfg.Seed)}
}

// Next draws the fault decision for the next frame.
func (i *NetInjector) Next() NetDecision {
	if i == nil {
		return NetDecision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.frames++
	if i.cfg.MaxInjections > 0 && i.injected >= uint64(i.cfg.MaxInjections) {
		return NetDecision{}
	}
	u := i.rng.Float64()
	for _, c := range []struct {
		p     float64
		class NetClass
	}{
		{i.cfg.PDrop, NetDrop},
		{i.cfg.PDuplicate, NetDuplicate},
		{i.cfg.PReorder, NetReorder},
		{i.cfg.PCorrupt, NetCorrupt},
		{i.cfg.PDelay, NetDelay},
	} {
		if u < c.p {
			i.injected++
			d := NetDecision{Class: c.class, Bits: i.rng.Uint64()}
			if c.class == NetDelay {
				frac := i.rng.Float64()
				d.Delay = time.Duration(frac * float64(i.cfg.DelayMax))
				if d.Delay <= 0 {
					d.Delay = 1
				}
			}
			return d
		}
		u -= c.p
	}
	return NetDecision{}
}

// Counts reports how many frames were seen and how many received a fault.
func (i *NetInjector) Counts() (frames, injected uint64) {
	if i == nil {
		return 0, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.frames, i.injected
}

// DeriveSeed mixes a base seed with a stream index (e.g. a rank) so each
// stream gets an independent but reproducible schedule.
func DeriveSeed(seed, stream uint64) uint64 {
	r := NewRand(seed ^ (stream+1)*0x9e3779b97f4a7c15)
	return r.Uint64()
}
