// Package mempool implements the reusable buffer pool at the heart of
// PEDAL's headline optimisation (paper §III-C): "PEDAL prearranges all
// essential buffers through a memory pool ... to reuse intermediate
// buffers, and eliminate the frequent need for memory allocation,
// deallocation, and mapping between regular and DOCA-operable memory
// during each compression and decompression execution."
//
// Buffers are bucketed by power-of-two size class. Hit/miss counters make
// the optimisation observable in tests and benchmarks.
//
// The pool is also the overload fault domain's first line of defense: an
// optional byte budget charges every outstanding buffer against a
// configurable ceiling. Plain Get never fails (accounting only, so the
// zero-allocation hot path is untouched); TryGet refuses with a typed
// ErrMemPressure once the budget is exhausted; GetCtx blocks until
// returns free enough budget or the context expires. Oversize one-shot
// buffers bypass retention entirely so a single huge request can never
// poison the size classes.
package mempool

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// ErrMemPressure is the typed refusal of a budget-governed allocation:
// admitting the buffer would push outstanding pool bytes past the
// configured budget. Callers shed, degrade, or wait — they never OOM.
var ErrMemPressure = errors.New("mempool: memory budget exhausted")

// Pool is a size-class bucketed buffer pool, safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes map[uint]*[][]byte

	hits   uint64
	misses uint64
	// outstanding is gets minus puts: how many buffers callers currently
	// hold. Leak checks assert it returns to a baseline after an
	// operation aborts.
	outstanding int64

	// maxPerClass caps retained buffers per size class to bound memory.
	maxPerClass int
	// maxPooled caps the largest retained buffer capacity. Returns above
	// it are dropped (and counted) instead of parked in a bucket forever;
	// gets above it allocate exactly and bypass class rounding.
	maxPooled int

	// Budget accounting: held is the byte sum charged to outstanding
	// buffers (class capacity for pooled sizes, exact size above
	// maxPooled); budget 0 means ungoverned. peak is the held high-water
	// mark since the last Prewarm.
	budget int64
	held   int64
	peak   int64

	droppedOversize uint64
	pressureWaits   uint64
	pressureRejects uint64

	// waitCh is the broadcast generation channel: closed and replaced
	// whenever budget is released so GetCtx waiters re-examine held.
	waitCh chan struct{}
}

// DefaultMaxPerClass is the default retention cap per size class.
const DefaultMaxPerClass = 32

// DefaultMaxPooledSize is the default capacity ceiling for retained
// buffers (the largest prewarmed class): anything bigger is treated as a
// one-shot allocation and dropped on Put.
const DefaultMaxPooledSize = 64 << 20

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		classes:     make(map[uint]*[][]byte),
		maxPerClass: DefaultMaxPerClass,
		maxPooled:   DefaultMaxPooledSize,
	}
}

// sizeClass returns the bucket exponent for n bytes: the smallest k with
// 1<<k >= n. Computed in O(1) from the bit length of n-1 (for n ≤ 1 the
// class is 0), instead of the shift loop this used to be.
func sizeClass(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// SetBudget sets the outstanding-bytes ceiling. Zero (the default)
// disables governance: Get/TryGet/GetCtx all behave like the classic
// pool. Lowering the budget below current held bytes does not revoke
// live buffers; it only blocks new governed gets until returns catch up.
func (p *Pool) SetBudget(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.budget = n
	p.wakeLocked()
}

// Budget reports the configured outstanding-bytes ceiling (0 =
// ungoverned).
func (p *Pool) Budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// chargeFor is the byte cost of a length-n get: the size-class capacity
// for pooled sizes, the exact size above the retention ceiling.
func (p *Pool) chargeFor(n int) int64 {
	if n > p.maxPooled {
		return int64(n)
	}
	return int64(1) << sizeClass(n)
}

// getLocked performs the bucket pop / allocation bookkeeping. The caller
// holds p.mu and has already decided admission; the allocation itself
// happens outside the lock via the returned plan.
func (p *Pool) getLocked(n int, charge int64) (buf []byte, hit bool) {
	p.outstanding++
	p.held += charge
	if p.held > p.peak {
		p.peak = p.held
	}
	if n <= p.maxPooled {
		k := sizeClass(n)
		if bucket := p.classes[k]; bucket != nil && len(*bucket) > 0 {
			buf = (*bucket)[len(*bucket)-1]
			*bucket = (*bucket)[:len(*bucket)-1]
			p.hits++
			return buf[:n], true
		}
	}
	p.misses++
	return nil, false
}

// Get returns a buffer with length n. The buffer may contain stale data.
// Get never fails and never blocks: under a budget it still charges the
// bytes (pressure becomes visible to TryGet/GetCtx and HeldBytes), which
// keeps the zero-allocation hot path free of new control flow.
func (p *Pool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	charge := p.chargeFor(n)
	p.mu.Lock()
	buf, hit := p.getLocked(n, charge)
	p.mu.Unlock()
	if hit {
		return buf
	}
	if n > p.maxPooled {
		// Oversize one-shot: exact allocation, no class rounding — a
		// 1 GB+1 request must not allocate (and charge) 2 GB.
		return make([]byte, n)
	}
	return make([]byte, n, 1<<sizeClass(n))
}

// TryGet returns a buffer with length n, or ErrMemPressure if admitting
// it would exceed the configured budget. With no budget set it is Get.
func (p *Pool) TryGet(n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	charge := p.chargeFor(n)
	p.mu.Lock()
	if p.budget > 0 && p.held+charge > p.budget {
		p.pressureRejects++
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes held + %d requested > budget %d",
			ErrMemPressure, p.held, charge, p.budget)
	}
	buf, hit := p.getLocked(n, charge)
	p.mu.Unlock()
	if hit {
		return buf, nil
	}
	if n > p.maxPooled {
		return make([]byte, n), nil
	}
	return make([]byte, n, 1<<sizeClass(n)), nil
}

// GetCtx returns a buffer with length n, waiting for budget to free up
// if the pool is governed and currently over-committed. It fails with
// ErrMemPressure (wrapping the context error) when ctx expires first,
// and immediately when the request alone can never fit the budget.
func (p *Pool) GetCtx(ctx context.Context, n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	charge := p.chargeFor(n)
	waited := false
	for {
		p.mu.Lock()
		if p.budget <= 0 || p.held+charge <= p.budget {
			buf, hit := p.getLocked(n, charge)
			p.mu.Unlock()
			if hit {
				return buf, nil
			}
			if n > p.maxPooled {
				return make([]byte, n), nil
			}
			return make([]byte, n, 1<<sizeClass(n)), nil
		}
		if charge > p.budget {
			// Never admissible: waiting would hang forever.
			p.pressureRejects++
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %d bytes exceed budget %d", ErrMemPressure, charge, p.budget)
		}
		if !waited {
			waited = true
			p.pressureWaits++
		}
		ch := p.waitChLocked()
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.pressureRejects++
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %w", ErrMemPressure, ctx.Err())
		case <-ch:
		}
	}
}

// waitChLocked returns the current generation channel, creating it on
// first use. Callers hold p.mu.
func (p *Pool) waitChLocked() chan struct{} {
	if p.waitCh == nil {
		p.waitCh = make(chan struct{})
	}
	return p.waitCh
}

// wakeLocked broadcasts to every GetCtx waiter by closing the current
// generation channel. Callers hold p.mu.
func (p *Pool) wakeLocked() {
	if p.waitCh != nil {
		close(p.waitCh)
		p.waitCh = nil
	}
}

// GetCap returns a zero-length buffer with capacity at least n, for
// append-style producers (compressors whose output size is not known in
// advance). As long as the final length stays within the size-class
// capacity, appends never reallocate; Put accepts the grown slice back.
func (p *Pool) GetCap(n int) []byte {
	if n == 0 {
		return nil
	}
	return p.Get(n)[:0]
}

// Put returns a buffer to the pool. The caller must not use buf after
// Put. Buffers whose capacity is not an exact size class are still
// accepted and bucketed by the largest class that fits. Buffers above
// the retention ceiling are dropped (counted in Snapshot) so one giant
// request cannot park gigabytes in a bucket forever.
func (p *Pool) Put(buf []byte) {
	c := cap(buf)
	if c == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outstanding--
	// Uncharge by capacity, clamped: append-grown GetCap buffers can
	// return fatter than they were charged, and Prewarm-style foreign
	// Puts were never charged at all.
	uncharge := int64(c)
	if c <= p.maxPooled {
		uncharge = int64(1) << sizeClass(c)
		if int(uncharge) > c {
			uncharge >>= 1 // capacity between classes: charged at the class below
		}
	}
	if uncharge > p.held {
		uncharge = p.held
	}
	if uncharge > 0 {
		p.held -= uncharge
		p.wakeLocked()
	}
	if c > p.maxPooled {
		p.droppedOversize++
		return
	}
	// Largest k with 1<<k <= cap.
	k := sizeClass(c)
	if 1<<k > c {
		if k == 0 {
			return
		}
		k--
	}
	bucket := p.classes[k]
	if bucket == nil {
		b := make([][]byte, 0, p.maxPerClass)
		bucket = &b
		p.classes[k] = bucket
	}
	if len(*bucket) >= p.maxPerClass {
		return // drop: retention cap reached
	}
	*bucket = append(*bucket, buf[:cap(buf)])
}

// Stats reports cumulative hit and miss counts.
func (p *Pool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Snapshot is a point-in-time view of the pool's counters, including the
// overload-domain accounting.
type Snapshot struct {
	Hits, Misses uint64
	Outstanding  int64
	// HeldBytes is the byte sum charged to outstanding buffers; Budget is
	// the configured ceiling (0 = ungoverned); PeakBytes is the held
	// high-water mark since the last Prewarm.
	HeldBytes, PeakBytes, Budget int64
	// DroppedOversize counts returns above the retention ceiling that
	// were freed instead of pooled. PressureWaits counts GetCtx calls
	// that had to block for budget; PressureRejects counts typed
	// ErrMemPressure refusals (TryGet denials and GetCtx expiries).
	DroppedOversize, PressureWaits, PressureRejects uint64
}

// Snapshot returns the current counter values.
func (p *Pool) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{
		Hits: p.hits, Misses: p.misses, Outstanding: p.outstanding,
		HeldBytes: p.held, PeakBytes: p.peak, Budget: p.budget,
		DroppedOversize: p.droppedOversize,
		PressureWaits:   p.pressureWaits, PressureRejects: p.pressureRejects,
	}
}

// Outstanding reports gets minus puts: the number of buffers currently
// held by callers. Aborted operations must bring it back to its
// pre-operation value, which is how the fault soaks assert no buffer
// leaked with an interrupted stream.
func (p *Pool) Outstanding() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// HeldBytes reports the bytes currently charged to outstanding buffers.
func (p *Pool) HeldBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.held
}

// PeakBytes reports the held-bytes high-water mark since the last
// Prewarm. The overload soak asserts it never exceeds the budget for
// governed gets.
func (p *Pool) PeakBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Prewarm allocates count buffers of each given size so that subsequent
// Gets hit. PEDAL_Init calls this so the per-message path never
// allocates.
func (p *Pool) Prewarm(sizes []int, count int) {
	for _, n := range sizes {
		bufs := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			k := sizeClass(n)
			bufs = append(bufs, make([]byte, n, 1<<k))
		}
		for _, b := range bufs {
			p.Put(b)
		}
	}
	// Prewarming is setup, not steady-state behaviour: do not let it
	// count as misses in the hit-rate statistics, nor as negative
	// outstanding buffers (the Puts above had no matching Gets). The
	// budget accounting resets with it — retained prewarmed buffers are
	// idle capacity, not held bytes.
	p.mu.Lock()
	p.misses = 0
	p.hits = 0
	p.outstanding = 0
	p.held = 0
	p.peak = 0
	p.droppedOversize = 0
	p.pressureWaits = 0
	p.pressureRejects = 0
	p.mu.Unlock()
}
