// Package mempool implements the reusable buffer pool at the heart of
// PEDAL's headline optimisation (paper §III-C): "PEDAL prearranges all
// essential buffers through a memory pool ... to reuse intermediate
// buffers, and eliminate the frequent need for memory allocation,
// deallocation, and mapping between regular and DOCA-operable memory
// during each compression and decompression execution."
//
// Buffers are bucketed by power-of-two size class. Hit/miss counters make
// the optimisation observable in tests and benchmarks.
package mempool

import (
	"math/bits"
	"sync"
)

// Pool is a size-class bucketed buffer pool, safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes map[uint]*[][]byte

	hits   uint64
	misses uint64
	// outstanding is gets minus puts: how many buffers callers currently
	// hold. Leak checks assert it returns to a baseline after an
	// operation aborts.
	outstanding int64

	// maxPerClass caps retained buffers per size class to bound memory.
	maxPerClass int
}

// DefaultMaxPerClass is the default retention cap per size class.
const DefaultMaxPerClass = 32

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		classes:     make(map[uint]*[][]byte),
		maxPerClass: DefaultMaxPerClass,
	}
}

// sizeClass returns the bucket exponent for n bytes: the smallest k with
// 1<<k >= n. Computed in O(1) from the bit length of n-1 (for n ≤ 1 the
// class is 0), instead of the shift loop this used to be.
func sizeClass(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// Get returns a buffer with length n. The buffer may contain stale data.
func (p *Pool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	k := sizeClass(n)
	p.mu.Lock()
	p.outstanding++
	if bucket := p.classes[k]; bucket != nil && len(*bucket) > 0 {
		buf := (*bucket)[len(*bucket)-1]
		*bucket = (*bucket)[:len(*bucket)-1]
		p.hits++
		p.mu.Unlock()
		return buf[:n]
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, n, 1<<k)
}

// GetCap returns a zero-length buffer with capacity at least n, for
// append-style producers (compressors whose output size is not known in
// advance). As long as the final length stays within the size-class
// capacity, appends never reallocate; Put accepts the grown slice back.
func (p *Pool) GetCap(n int) []byte {
	if n == 0 {
		return nil
	}
	return p.Get(n)[:0]
}

// Put returns a buffer to the pool. The caller must not use buf after
// Put. Buffers whose capacity is not an exact size class are still
// accepted and bucketed by the largest class that fits.
func (p *Pool) Put(buf []byte) {
	c := cap(buf)
	if c == 0 {
		return
	}
	// Largest k with 1<<k <= cap.
	k := sizeClass(c)
	if 1<<k > c {
		if k == 0 {
			return
		}
		k--
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outstanding--
	bucket := p.classes[k]
	if bucket == nil {
		b := make([][]byte, 0, p.maxPerClass)
		bucket = &b
		p.classes[k] = bucket
	}
	if len(*bucket) >= p.maxPerClass {
		return // drop: retention cap reached
	}
	*bucket = append(*bucket, buf[:cap(buf)])
}

// Stats reports cumulative hit and miss counts.
func (p *Pool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Outstanding reports gets minus puts: the number of buffers currently
// held by callers. Aborted operations must bring it back to its
// pre-operation value, which is how the fault soaks assert no buffer
// leaked with an interrupted stream.
func (p *Pool) Outstanding() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// Prewarm allocates count buffers of each given size so that subsequent
// Gets hit. PEDAL_Init calls this so the per-message path never
// allocates.
func (p *Pool) Prewarm(sizes []int, count int) {
	for _, n := range sizes {
		bufs := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			k := sizeClass(n)
			bufs = append(bufs, make([]byte, n, 1<<k))
		}
		for _, b := range bufs {
			p.Put(b)
		}
	}
	// Prewarming is setup, not steady-state behaviour: do not let it
	// count as misses in the hit-rate statistics, nor as negative
	// outstanding buffers (the Puts above had no matching Gets).
	p.mu.Lock()
	p.misses = 0
	p.hits = 0
	p.outstanding = 0
	p.mu.Unlock()
}
