package mempool

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPutReuse(t *testing.T) {
	p := New()
	b1 := p.Get(1000)
	if len(b1) != 1000 {
		t.Fatalf("len = %d", len(b1))
	}
	p.Put(b1)
	b2 := p.Get(900) // same size class (1024)
	if len(b2) != 900 {
		t.Fatalf("len = %d", len(b2))
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestZeroSize(t *testing.T) {
	p := New()
	if buf := p.Get(0); buf != nil {
		t.Fatal("Get(0) should return nil")
	}
	p.Put(nil) // must not panic
}

func TestPrewarmEliminatesMisses(t *testing.T) {
	p := New()
	sizes := []int{4096, 65536, 1 << 20}
	p.Prewarm(sizes, 4)
	for round := 0; round < 4; round++ {
		var bufs [][]byte
		for _, n := range sizes {
			bufs = append(bufs, p.Get(n))
		}
		for _, b := range bufs {
			p.Put(b)
		}
	}
	hits, misses := p.Stats()
	if misses != 0 {
		t.Fatalf("prewarmed pool missed %d times (hits %d)", misses, hits)
	}
	if hits != uint64(4*len(sizes)) {
		t.Fatalf("hits = %d, want %d", hits, 4*len(sizes))
	}
}

func TestRetentionCap(t *testing.T) {
	p := New()
	for i := 0; i < DefaultMaxPerClass*3; i++ {
		p.Put(make([]byte, 1024))
	}
	// Only maxPerClass buffers should be retained; the rest dropped. We
	// can observe this by draining: after maxPerClass hits we must miss.
	for i := 0; i < DefaultMaxPerClass; i++ {
		p.Get(1024)
	}
	hits, misses := p.Stats()
	if hits != DefaultMaxPerClass || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	p.Get(1024)
	_, misses = p.Stats()
	if misses != 1 {
		t.Fatalf("expected a miss after draining, misses=%d", misses)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get(1 << uint(6+i%8))
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}

func TestQuickGetLength(t *testing.T) {
	p := New()
	f := func(n uint16) bool {
		if n == 0 {
			return p.Get(0) == nil
		}
		b := p.Get(int(n))
		ok := len(b) == int(n) && cap(b) >= int(n)
		p.Put(b)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeClassPowerOfTwo(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {1023, 10}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
