package mempool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetTryGet(t *testing.T) {
	p := New()
	p.SetBudget(4096)
	a, err := p.TryGet(2048)
	if err != nil {
		t.Fatalf("first TryGet: %v", err)
	}
	b, err := p.TryGet(2048)
	if err != nil {
		t.Fatalf("second TryGet: %v", err)
	}
	if _, err := p.TryGet(1); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("over-budget TryGet = %v, want ErrMemPressure", err)
	}
	p.Put(a)
	if _, err := p.TryGet(1024); err != nil {
		t.Fatalf("TryGet after Put: %v", err)
	}
	p.Put(b)
	if snap := p.Snapshot(); snap.PressureRejects != 1 {
		t.Fatalf("PressureRejects = %d, want 1", snap.PressureRejects)
	}
}

func TestBudgetPlainGetStillServes(t *testing.T) {
	p := New()
	p.SetBudget(1024)
	// Plain Get never fails: it charges only, so pressure is visible
	// without new control flow on the hot path.
	a := p.Get(4096)
	if len(a) != 4096 {
		t.Fatalf("len = %d", len(a))
	}
	if held := p.HeldBytes(); held != 4096 {
		t.Fatalf("held = %d, want 4096", held)
	}
	p.Put(a)
	if held := p.HeldBytes(); held != 0 {
		t.Fatalf("held after Put = %d, want 0", held)
	}
}

func TestGetCtxBlocksUntilReturn(t *testing.T) {
	p := New()
	p.SetBudget(4096)
	held, err := p.GetCtx(context.Background(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		buf, err := p.GetCtx(ctx, 1024)
		if err == nil {
			p.Put(buf)
		}
		got <- err
	}()
	// The waiter must not complete while the budget is fully held.
	select {
	case err := <-got:
		t.Fatalf("GetCtx returned %v while budget exhausted", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Put(held)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("GetCtx after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetCtx never woke after budget release")
	}
	if snap := p.Snapshot(); snap.PressureWaits == 0 {
		t.Fatal("PressureWaits not counted")
	}
}

func TestGetCtxCancellation(t *testing.T) {
	p := New()
	p.SetBudget(1024)
	buf, err := p.GetCtx(context.Background(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(buf)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.GetCtx(ctx, 512)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrMemPressure) {
			t.Fatalf("cancelled GetCtx = %v, want ErrMemPressure wrap", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled GetCtx = %v, want context.Canceled wrap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled GetCtx never returned")
	}
}

func TestGetCtxNeverAdmissible(t *testing.T) {
	p := New()
	p.SetBudget(1024)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := p.GetCtx(ctx, 4096); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("impossible GetCtx = %v, want ErrMemPressure", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("impossible GetCtx waited instead of failing fast")
	}
}

// TestBudgetStress hammers a governed pool from many goroutines mixing
// TryGet, GetCtx and plain-Get-free returns, and asserts the two
// overload invariants: governed admissions never push held bytes past
// the budget, and Outstanding returns to zero after the drain. Run
// under -race this is the satellite concurrency-coverage test.
func TestBudgetStress(t *testing.T) {
	const budget = 1 << 20
	p := New()
	p.SetBudget(budget)
	var over atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 400; i++ {
				n := 1 << uint(10+(g+i)%7) // 1 KiB .. 64 KiB
				var buf []byte
				var err error
				if i%2 == 0 {
					buf, err = p.TryGet(n)
					if errors.Is(err, ErrMemPressure) {
						continue
					}
				} else {
					buf, err = p.GetCtx(ctx, n)
				}
				if err != nil {
					t.Errorf("get(%d): %v", n, err)
					return
				}
				if held := p.HeldBytes(); held > budget {
					over.Store(true)
				}
				buf[0] = byte(i)
				p.Put(buf)
			}
		}(g)
	}
	wg.Wait()
	if over.Load() {
		t.Fatalf("held bytes exceeded budget %d under governed load", budget)
	}
	if snap := p.Snapshot(); snap.Outstanding != 0 || snap.HeldBytes != 0 {
		t.Fatalf("after drain: outstanding=%d held=%d, want 0/0", snap.Outstanding, snap.HeldBytes)
	}
	if peak := p.PeakBytes(); peak > budget {
		t.Fatalf("peak %d exceeded budget %d", peak, budget)
	}
}

func TestOversizePutDropped(t *testing.T) {
	p := New()
	big := p.Get(DefaultMaxPooledSize + 1)
	if cap(big) < DefaultMaxPooledSize+1 {
		t.Fatalf("cap = %d", cap(big))
	}
	p.Put(big)
	snap := p.Snapshot()
	if snap.DroppedOversize != 1 {
		t.Fatalf("DroppedOversize = %d, want 1", snap.DroppedOversize)
	}
	if snap.Outstanding != 0 || snap.HeldBytes != 0 {
		t.Fatalf("outstanding=%d held=%d after oversize Put", snap.Outstanding, snap.HeldBytes)
	}
	// The oversize buffer must not have been parked in a class bucket:
	// a following oversize Get is a miss, not a poisoned-class hit.
	p.Get(DefaultMaxPooledSize + 1)
	if hits, _ := p.Stats(); hits != 0 {
		t.Fatalf("oversize Get hit a retained oversize buffer (hits=%d)", hits)
	}
}
