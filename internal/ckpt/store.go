package ckpt

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pedal/internal/checksum"
	"pedal/internal/integrity"
	"pedal/internal/stats"
	"pedal/internal/trace"
)

// On-disk layout, all under the FS root:
//
//	epoch-<16-hex>/            committed checkpoint (manifest + shards)
//	  MANIFEST
//	  shard-<5-dec>.<copy>
//	.staging-<16-hex>/         commit in progress; ignored by restore,
//	                           cleaned by Open and the next Commit
//	.condemned-<16-hex>/       epoch retired by Scrub
//	quarantine/                corrupt shard copies moved aside by repair
const (
	manifestName  = "MANIFEST"
	quarantineDir = "quarantine"
)

func epochDirName(e uint64) string     { return fmt.Sprintf("epoch-%016x", e) }
func stagingDirName(e uint64) string   { return fmt.Sprintf(".staging-%016x", e) }
func condemnedDirName(e uint64) string { return fmt.Sprintf(".condemned-%016x", e) }
func shardFileName(rank int, copy uint8) string {
	return fmt.Sprintf("shard-%05d.%d", rank, copy)
}

// EpochDir returns the directory name of a committed epoch — for
// operational tooling and fault-injection harnesses that address
// specific files.
func EpochDir(e uint64) string { return epochDirName(e) }

// ShardPath returns the path of one shard copy inside a committed
// epoch.
func ShardPath(e uint64, rank int, copy uint8) string {
	return epochDirName(e) + "/" + shardFileName(rank, copy)
}

// parseEpochDir recovers the epoch from a directory name with the given
// prefix.
func parseEpochDir(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	var e uint64
	if _, err := fmt.Sscanf(name[len(prefix):], "%016x", &e); err != nil {
		return 0, false
	}
	return e, true
}

// Source re-materialises a shard's original (uncompressed) content —
// the last rung of the repair ladder, used when every on-disk copy of a
// shard has rotted. Checkpoint writers that still hold (or can
// regenerate) the state they checkpointed install one with SetSource.
type Source func(epoch uint64, rank int) ([]byte, error)

// Config tunes a Store. Compressor is required.
type Config struct {
	// Compressor encodes and decodes shard payloads (local library,
	// fleet router, or nop).
	Compressor Compressor
	// Replicas is how many copies of each shard one epoch keeps; rot in
	// one copy read-repairs from a survivor. Zero means 1; max 4.
	Replicas int
	// Retain is how many committed epochs Commit keeps before removing
	// the oldest; zero means 2 (the new epoch and its predecessor).
	Retain int
	// MaxShardBytes bounds one decompressed shard at restore; zero
	// means 1 GiB.
	MaxShardBytes int
	// Algo, DataType, BoundMode, ErrorBound are recorded in the
	// manifest (error-bound config travels with the data it encoded).
	Algo       uint8
	DataType   uint8
	BoundMode  uint8
	ErrorBound float64
	// Stats receives the store's counters; nil allocates a private
	// breakdown.
	Stats *stats.Breakdown
	// Tracer, when set, records commit/repair/condemn events under
	// Engine "ckpt".
	Tracer *trace.Tracer
}

// Store is a crash-consistent checkpoint store over an FS. Safe for
// concurrent use; commits are serialised by the FS protocol itself
// (strictly increasing epochs).
type Store struct {
	fs     FS
	cfg    Config
	bd     *stats.Breakdown
	source Source
}

// Open builds a store over fs and sweeps leftovers of interrupted
// commits (stale staging directories) — the recovery half of the
// two-phase commit.
func Open(fs FS, cfg Config) (*Store, error) {
	if cfg.Compressor == nil {
		return nil, errors.New("ckpt: Config.Compressor is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > 4 {
		cfg.Replicas = 4
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 2
	}
	if cfg.MaxShardBytes <= 0 {
		cfg.MaxShardBytes = 1 << 30
	}
	bd := cfg.Stats
	if bd == nil {
		bd = stats.NewBreakdown()
	}
	s := &Store{fs: fs, cfg: cfg, bd: bd}
	names, err := fs.ReadDir(".")
	if err != nil {
		// An empty root is fine; a broken FS is not.
		if mkErr := fs.MkdirAll("."); mkErr != nil {
			return nil, err
		}
	}
	for _, n := range names {
		if _, ok := parseEpochDir(n, ".staging-"); ok {
			// Best-effort: a crashed store (injected kill) refuses the
			// removal; the next healthy Open or Commit gets it.
			_ = fs.RemoveAll(n)
		}
	}
	return s, nil
}

// Stats exposes the store's counters.
func (s *Store) Stats() *stats.Breakdown { return s.bd }

// SetSource installs the re-materialisation callback for the repair
// ladder's last rung.
func (s *Store) SetSource(src Source) { s.source = src }

// Epochs lists committed epochs, ascending.
func (s *Store) Epochs() ([]uint64, error) {
	names, err := s.fs.ReadDir(".")
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, n := range names {
		if e, ok := parseEpochDir(n, "epoch-"); ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Commit persists one checkpoint under the two-phase protocol:
//
//  1. every shard is compressed, written (Replicas copies) into a
//     hidden staging directory, and fsync'd, its CRC digested during
//     the write;
//  2. the manifest (epoch, shard digests, compression config) is
//     written and fsync'd into staging;
//  3. the staging directory is atomically renamed to its epoch name
//     and the root directory fsync'd.
//
// A crash at any instant leaves either the previous complete
// checkpoint (rename not yet executed: restore ignores staging) or the
// new one (rename executed: everything inside was already durable).
// Epochs must be strictly increasing. Old epochs beyond Retain are
// removed best-effort after the rename — by then the commit stands.
func (s *Store) Commit(epoch uint64, shards [][]byte) (*Manifest, error) {
	if len(shards) == 0 {
		return nil, errors.New("ckpt: empty checkpoint")
	}
	if len(shards) > MaxShards {
		return nil, fmt.Errorf("ckpt: %d shards exceeds limit %d", len(shards), MaxShards)
	}
	existing, err := s.Epochs()
	if err != nil {
		return nil, err
	}
	if n := len(existing); n > 0 && existing[n-1] >= epoch {
		return nil, fmt.Errorf("ckpt: epoch %d not above committed epoch %d", epoch, existing[n-1])
	}

	staging := stagingDirName(epoch)
	_ = s.fs.RemoveAll(staging) // stale leftover from an interrupted run
	if err := s.fs.MkdirAll(staging); err != nil {
		return nil, err
	}
	m := &Manifest{
		Epoch:      epoch,
		Replicas:   uint8(s.cfg.Replicas),
		Algo:       s.cfg.Algo,
		DataType:   s.cfg.DataType,
		BoundMode:  s.cfg.BoundMode,
		ErrorBound: s.cfg.ErrorBound,
		Shards:     make([]ShardInfo, len(shards)),
	}
	dir := epochDirName(epoch)
	for rank, data := range shards {
		payload, crc, err := s.compressShard(dir+"/"+shardFileName(rank, 0), data)
		if err != nil {
			_ = s.fs.RemoveAll(staging)
			return nil, fmt.Errorf("ckpt: compress shard %d: %w", rank, err)
		}
		if got := checksum.CRC32(payload); got != crc {
			// The compressor's source digest disagrees with the bytes that
			// arrived here: the shard was damaged on the compressor hop.
			// Typed abort before anything reaches disk.
			s.bd.Inc(stats.CounterHopsRejected)
			_ = s.fs.RemoveAll(staging)
			return nil, &integrity.CorruptError{Hop: "ckpt.commit", Segment: "shard", Index: rank, Want: crc, Got: got}
		}
		m.Shards[rank] = ShardInfo{Size: uint64(len(payload)), CRC: crc}
		for c := uint8(0); c < m.Replicas; c++ {
			p := staging + "/" + shardFileName(rank, c)
			if err := s.fs.WriteFile(p, payload); err != nil {
				return nil, s.abortCommit(staging, err)
			}
			if err := s.fs.Sync(p); err != nil {
				return nil, s.abortCommit(staging, err)
			}
			// Read-back verification: a torn or rotten write is silent (the
			// syscall "succeeded"), so every copy is digest-checked before
			// the commit may proceed — the failure becomes a clean typed
			// abort instead of a committed epoch with a bad shard.
			if rb, rerr := s.fs.ReadFile(p); rerr != nil || !verifyPayload(rb, m.Shards[rank]) {
				return nil, s.abortCommit(staging,
					fmt.Errorf("ckpt: commit verification: %w: copy %s torn or rotten at write", ErrShardRot, p))
			}
		}
	}
	mp := staging + "/" + manifestName
	if err := s.fs.WriteFile(mp, m.Encode()); err != nil {
		return nil, s.abortCommit(staging, err)
	}
	if err := s.fs.Sync(mp); err != nil {
		return nil, s.abortCommit(staging, err)
	}
	// Same read-back check for the manifest: a torn manifest write would
	// otherwise commit an epoch that can never be opened.
	if rb, rerr := s.fs.ReadFile(mp); rerr != nil {
		return nil, s.abortCommit(staging, fmt.Errorf("ckpt: commit verification: %w: %v", ErrTornManifest, rerr))
	} else if rm, derr := DecodeManifest(rb); derr != nil || rm.Epoch != epoch {
		return nil, s.abortCommit(staging,
			fmt.Errorf("ckpt: commit verification: %w: manifest torn at write", ErrTornManifest))
	}
	if err := s.fs.Sync(staging); err != nil {
		return nil, s.abortCommit(staging, err)
	}
	// The commit point: one atomic rename.
	if err := s.fs.Rename(staging, dir); err != nil {
		return nil, s.abortCommit(staging, err)
	}
	_ = s.fs.Sync(".")
	s.bd.Inc(stats.CounterCkptCommits)
	s.trace("commit", dir, "")
	// Retention GC, best-effort: the new epoch is already durable.
	if keep := s.cfg.Retain; len(existing)+1 > keep {
		for _, old := range existing[:len(existing)+1-keep] {
			_ = s.fs.RemoveAll(epochDirName(old))
		}
	}
	return m, nil
}

// compressShard runs one shard through the compressor, preferring the
// checked path when the compressor offers it: the returned CRC is then
// the digest computed at the compression source, so Commit's
// verification spans the whole compressor hop. Plain compressors get
// their digest computed here (the pre-integrity behaviour).
func (s *Store) compressShard(key string, data []byte) ([]byte, uint32, error) {
	if cc, ok := s.cfg.Compressor.(CheckedCompressor); ok {
		return cc.CompressChecked(key, data)
	}
	payload, err := s.cfg.Compressor.Compress(key, data)
	if err != nil {
		return nil, 0, err
	}
	return payload, checksum.CRC32(payload), nil
}

// abortCommit tears down a failed staging directory. After an injected
// crash the RemoveAll fails too — by design: the dead process cannot
// clean up, Open does it on restart.
func (s *Store) abortCommit(staging string, err error) error {
	_ = s.fs.RemoveAll(staging)
	return err
}

// trace records a storage fault-domain event.
func (s *Store) trace(op, who, errText string) {
	s.cfg.Tracer.Record(trace.Event{Engine: "ckpt", Op: op, Algo: who, Err: errText})
}
