package ckpt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/fleet"
	"pedal/internal/hwmodel"
	"pedal/internal/service"
)

// libBackend adapts a local core.Library to the fleet Backend surface,
// so a RouterCompressor can be exercised without a TCP daemon.
type libBackend struct{ lib *core.Library }

func (b *libBackend) Compress(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	msg, _, err := b.lib.Compress(d, dt, data)
	return msg, err
}

func (b *libBackend) Decompress(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	out, _, err := b.lib.Decompress(engine, dt, msg, maxOut)
	return out, err
}

func (b *libBackend) Health() (service.Health, error) {
	return service.Health{State: "live"}, nil
}
func (b *libBackend) Ping() error  { return nil }
func (b *libBackend) Close() error { return nil }

// TestCompressorDeterminism pins the contract the repair ladder depends
// on: every registered Compressor implementation must produce
// byte-identical output across repeated runs over the same input, and
// the round trip must reproduce the source both times.
func TestCompressorDeterminism(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField3})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()

	router := fleet.NewRouter(fleet.Config{
		Dial: func(string, time.Duration) (fleet.Backend, error) {
			return &libBackend{lib: lib}, nil
		},
	})
	defer router.Close()
	router.AddShard("s0", "addr-s0")

	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	compressors := map[string]Compressor{
		"nop":     NopCompressor{},
		"library": &LibraryCompressor{Lib: lib, Design: design, Type: core.TypeBytes},
		"router":  &RouterCompressor{Router: router, Design: design, Type: core.TypeBytes},
	}
	data := bytes.Repeat([]byte("deterministic checkpoint shard payload|"), 200)
	for name, c := range compressors {
		t.Run(name, func(t *testing.T) {
			key := "epoch-0000000000000001/shard-00000.0"
			first, err := c.Compress(key, data)
			if err != nil {
				t.Fatal(err)
			}
			second, err := c.Compress(key, data)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("two runs differ: %d vs %d bytes", len(first), len(second))
			}
			for run, msg := range [][]byte{first, second} {
				out, err := c.Decompress(key, msg, len(data)+64)
				if err != nil {
					t.Fatalf("run %d decompress: %v", run, err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("run %d round trip mismatch", run)
				}
			}
			// The checked variant must agree with the plain path and carry
			// the digest of exactly the bytes it returned.
			if cc, ok := c.(CheckedCompressor); ok {
				msg, crc, err := cc.CompressChecked(key, data)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(msg, first) {
					t.Fatal("checked compression differs from plain compression")
				}
				if !verifyPayload(msg, ShardInfo{Size: uint64(len(msg)), CRC: crc}) {
					t.Fatal("carried CRC does not match returned bytes")
				}
			}
		})
	}
}

// flakyCompressor stamps a per-call counter into its output, modelling
// a compressor whose output drifts between runs.
type flakyCompressor struct{ calls int }

func (f *flakyCompressor) Compress(_ string, data []byte) ([]byte, error) {
	f.calls++
	return append([]byte{byte(f.calls)}, data...), nil
}

func (f *flakyCompressor) Decompress(_ string, msg []byte, _ int) ([]byte, error) {
	if len(msg) < 1 {
		return nil, errors.New("short")
	}
	return append([]byte(nil), msg[1:]...), nil
}

// TestRestoreNondeterministicCompressor drives the repair ladder's
// source rung with a drifting compressor: the re-compression digest
// cannot match the manifest, and the second-run comparison must convict
// the compressor with the typed ErrNondeterministic instead of the
// generic rot error.
func TestRestoreNondeterministicCompressor(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{Compressor: &flakyCompressor{}})
	shards := testShards(1, 2)
	if _, err := s.Commit(1, shards); err != nil {
		t.Fatal(err)
	}
	// Rot the only copy of shard 0 so restore must fall through to the
	// source rung.
	if err := FlipBit(fs, ShardPath(1, 0, 0), 12); err != nil {
		t.Fatal(err)
	}
	s.SetSource(func(epoch uint64, rank int) ([]byte, error) {
		return testShards(epoch, 2)[rank], nil
	})
	_, err := s.Restore()
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
	if !IsTyped(err) {
		t.Fatal("ErrNondeterministic not recognised by IsTyped")
	}
}

// TestRestoreDeterministicSourceRepair is the control: the same ladder
// with a deterministic compressor repairs the shard from source.
func TestRestoreDeterministicSourceRepair(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{})
	if _, err := s.Commit(1, testShards(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(fs, ShardPath(1, 0, 0), 12); err != nil {
		t.Fatal(err)
	}
	s.SetSource(func(epoch uint64, rank int) ([]byte, error) {
		return testShards(epoch, 2)[rank], nil
	})
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 2)
	if cp.Repaired == 0 {
		t.Fatal("source repair did not rewrite the rotten copy")
	}
}
