package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pedal/internal/checksum"
)

// Typed storage fault-domain errors. Callers branch on these with
// errors.Is; anything else escaping the store is a bug the soaks count
// as an untyped error.
var (
	// ErrTornManifest reports a manifest that fails structural or CRC
	// validation — a torn write or rot in the metadata itself. The epoch
	// carrying it is unreadable, but older epochs are unaffected.
	ErrTornManifest = errors.New("ckpt: torn or corrupt manifest")
	// ErrShardRot reports a shard whose every copy fails digest
	// verification and that no repair rung (replica, source) could
	// recover.
	ErrShardRot = errors.New("ckpt: shard failed digest verification beyond repair")
	// ErrEpochCondemned reports an epoch declared unrecoverable and
	// retired from the restore sequence.
	ErrEpochCondemned = errors.New("ckpt: epoch condemned")
	// ErrNoCheckpoint reports that no committed epoch could be restored.
	ErrNoCheckpoint = errors.New("ckpt: no restorable checkpoint")
	// ErrNondeterministic reports a Compressor whose output differs
	// between two runs over the same input. The repair ladder's
	// source-re-compression rung depends on determinism (the manifest
	// digest must match the re-compressed bytes), so a nondeterministic
	// compressor is surfaced as its own typed failure instead of an
	// unexplained digest mismatch.
	ErrNondeterministic = errors.New("ckpt: compressor output is nondeterministic")
)

// Manifest metadata limits: a decoder must reject absurd counts before
// allocating, so a fuzzed manifest can never balloon memory.
const (
	// MaxShards bounds the per-checkpoint shard (rank) count.
	MaxShards = 1 << 16
	// MaxShardSize bounds one compressed shard's recorded size (1 GiB).
	MaxShardSize = 1 << 30
)

// manifest wire layout (little-endian):
//
//	magic "PCKM" | version u8 | epoch u64 | replicas u8 | algo u8 |
//	dtype u8 | boundmode u8 | errbound f64 | nshards u32 |
//	nshards × { size u64 | crc u32 } | trailer crc u32
//
// The trailer CRC covers every preceding byte, so any tear or flip
// anywhere in the manifest is detected as ErrTornManifest.
const (
	manifestMagic   = "PCKM"
	manifestVersion = 1
	manifestHdrLen  = 4 + 1 + 8 + 1 + 1 + 1 + 1 + 8 + 4
	shardEntryLen   = 8 + 4
)

// ShardInfo is one rank's shard record: the compressed size and CRC-32
// every on-disk copy must match.
type ShardInfo struct {
	Size uint64
	CRC  uint32
}

// Manifest describes one committed checkpoint epoch: which shards it
// holds, their digests, and the compression configuration that encoded
// them (so restart decodes with the same error-bound semantics).
type Manifest struct {
	Epoch    uint64
	Replicas uint8
	// Algo, DataType, BoundMode, ErrorBound record the compression
	// configuration (core.AlgoID / core.DataType / sz3.BoundMode values;
	// stored as raw bytes so the manifest codec has no core dependency).
	Algo       uint8
	DataType   uint8
	BoundMode  uint8
	ErrorBound float64
	Shards     []ShardInfo
}

// Encode renders the manifest with its trailer CRC.
func (m *Manifest) Encode() []byte {
	out := make([]byte, 0, manifestHdrLen+len(m.Shards)*shardEntryLen+4)
	out = append(out, manifestMagic...)
	out = append(out, manifestVersion)
	out = binary.LittleEndian.AppendUint64(out, m.Epoch)
	out = append(out, m.Replicas, m.Algo, m.DataType, m.BoundMode)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.ErrorBound))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		out = binary.LittleEndian.AppendUint64(out, s.Size)
		out = binary.LittleEndian.AppendUint32(out, s.CRC)
	}
	return binary.LittleEndian.AppendUint32(out, checksum.CRC32(out))
}

// DecodeManifest parses and validates a manifest. Every failure mode —
// short buffer, bad magic, wrong version, absurd counts, trailing
// garbage, CRC mismatch — comes back as ErrTornManifest so the caller's
// recovery policy (fall back to the previous epoch) has one branch.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < manifestHdrLen+4 {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTornManifest, len(b), manifestHdrLen+4)
	}
	if string(b[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrTornManifest, b[:4])
	}
	if b[4] != manifestVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrTornManifest, b[4])
	}
	// Validate the trailer CRC before trusting any counted field.
	body, trailer := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if checksum.CRC32(body) != trailer {
		return nil, fmt.Errorf("%w: trailer CRC mismatch", ErrTornManifest)
	}
	m := &Manifest{
		Epoch:      binary.LittleEndian.Uint64(b[5:]),
		Replicas:   b[13],
		Algo:       b[14],
		DataType:   b[15],
		BoundMode:  b[16],
		ErrorBound: math.Float64frombits(binary.LittleEndian.Uint64(b[17:])),
	}
	n := binary.LittleEndian.Uint32(b[25:])
	if n > MaxShards {
		return nil, fmt.Errorf("%w: %d shards exceeds limit %d", ErrTornManifest, n, MaxShards)
	}
	if want := manifestHdrLen + int(n)*shardEntryLen + 4; len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d shards, want %d", ErrTornManifest, len(b), n, want)
	}
	if m.Replicas == 0 {
		return nil, fmt.Errorf("%w: zero replicas", ErrTornManifest)
	}
	m.Shards = make([]ShardInfo, n)
	off := manifestHdrLen
	for i := range m.Shards {
		m.Shards[i].Size = binary.LittleEndian.Uint64(b[off:])
		m.Shards[i].CRC = binary.LittleEndian.Uint32(b[off+8:])
		if m.Shards[i].Size > MaxShardSize {
			return nil, fmt.Errorf("%w: shard %d size %d exceeds limit", ErrTornManifest, i, m.Shards[i].Size)
		}
		off += shardEntryLen
	}
	return m, nil
}
