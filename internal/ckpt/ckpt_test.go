package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"pedal/internal/faults"
)

// testShards builds deterministic per-rank payloads that differ by
// epoch, so a restore proves *which* epoch it recovered.
func testShards(epoch uint64, ranks int) [][]byte {
	out := make([][]byte, ranks)
	for r := range out {
		out[r] = bytes.Repeat([]byte(fmt.Sprintf("epoch-%d-rank-%d|", epoch, r)), 50+r)
	}
	return out
}

func mustOpen(t *testing.T, fs FS, cfg Config) *Store {
	t.Helper()
	if cfg.Compressor == nil {
		cfg.Compressor = NopCompressor{}
	}
	s, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkShards(t *testing.T, cp *Checkpoint, epoch uint64, ranks int) {
	t.Helper()
	if cp.Epoch != epoch {
		t.Fatalf("restored epoch %d, want %d", cp.Epoch, epoch)
	}
	want := testShards(epoch, ranks)
	if len(cp.Shards) != ranks {
		t.Fatalf("%d shards, want %d", len(cp.Shards), ranks)
	}
	for r := range want {
		if !bytes.Equal(cp.Shards[r], want[r]) {
			t.Fatalf("shard %d content mismatch after restore", r)
		}
	}
}

func TestCommitRestoreRoundTrip(t *testing.T) {
	for _, fsKind := range []string{"mem", "dir"} {
		t.Run(fsKind, func(t *testing.T) {
			var fs FS = NewMemFS()
			if fsKind == "dir" {
				dfs, err := NewDirFS(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				fs = dfs
			}
			s := mustOpen(t, fs, Config{Replicas: 2, ErrorBound: 1e-4})
			if _, err := s.Commit(1, testShards(1, 4)); err != nil {
				t.Fatal(err)
			}
			cp, err := s.Restore()
			if err != nil {
				t.Fatal(err)
			}
			checkShards(t, cp, 1, 4)
			if cp.RotDetected != 0 || cp.Repaired != 0 {
				t.Fatalf("clean restore reported rot=%d repaired=%d", cp.RotDetected, cp.Repaired)
			}
			if cp.Manifest.ErrorBound != 1e-4 {
				t.Fatalf("manifest error bound %g, want 1e-4", cp.Manifest.ErrorBound)
			}
		})
	}
}

func TestEpochsMustIncrease(t *testing.T) {
	s := mustOpen(t, NewMemFS(), Config{})
	if _, err := s.Commit(3, testShards(3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(3, testShards(3, 2)); err == nil {
		t.Fatal("re-committing the same epoch succeeded")
	}
	if _, err := s.Commit(2, testShards(2, 2)); err == nil {
		t.Fatal("committing an older epoch succeeded")
	}
}

func TestRetention(t *testing.T) {
	s := mustOpen(t, NewMemFS(), Config{Retain: 2})
	for e := uint64(1); e <= 5; e++ {
		if _, err := s.Commit(e, testShards(e, 2)); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := s.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 4 || epochs[1] != 5 {
		t.Fatalf("retained epochs %v, want [4 5]", epochs)
	}
}

func TestReplicaReadRepair(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{Replicas: 2})
	if _, err := s.Commit(1, testShards(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Rot copy 0 of shard 2; copy 1 survives.
	if err := FlipBit(fs, epochDirName(1)+"/"+shardFileName(2, 0), 123); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 3)
	if cp.RotDetected != 1 || cp.Repaired != 1 {
		t.Fatalf("rot=%d repaired=%d, want 1/1", cp.RotDetected, cp.Repaired)
	}
	// The repair is durable: a second restore is clean.
	cp, err = s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if cp.RotDetected != 0 {
		t.Fatalf("rot detected again after repair: %d", cp.RotDetected)
	}
	// The rotten copy was quarantined for forensics.
	names, err := fs.ReadDir(quarantineDir)
	if err != nil || len(names) != 1 {
		t.Fatalf("quarantine holds %v (err %v), want 1 entry", names, err)
	}
}

func TestSourceRepair(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{Replicas: 1})
	if _, err := s.Commit(1, testShards(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(fs, epochDirName(1)+"/"+shardFileName(1, 0), 7); err != nil {
		t.Fatal(err)
	}
	// Without a source, the only copy is beyond repair.
	if _, err := s.RestoreEpoch(1); !errors.Is(err, ErrShardRot) {
		t.Fatalf("RestoreEpoch = %v, want ErrShardRot", err)
	}
	// With a source, the shard re-materialises and the file is healed.
	s.SetSource(func(epoch uint64, rank int) ([]byte, error) {
		return testShards(epoch, 2)[rank], nil
	})
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 2)
	if cp.Repaired != 1 {
		t.Fatalf("repaired = %d, want 1", cp.Repaired)
	}
	s.SetSource(nil)
	if cp, err = s.Restore(); err != nil || cp.RotDetected != 0 {
		t.Fatalf("post-repair restore: cp=%+v err=%v", cp, err)
	}
}

func TestRestoreFallsBackPastRottenEpoch(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{Replicas: 1, Retain: 3})
	for e := uint64(1); e <= 2; e++ {
		if _, err := s.Commit(e, testShards(e, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 2's only copy of shard 0 rots with no repair path: restart
	// lands on epoch 1, never on a hybrid.
	if err := FlipBit(fs, epochDirName(2)+"/"+shardFileName(0, 0), 99); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 2)
}

func TestTornManifestFallsBack(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{})
	for e := uint64(1); e <= 2; e++ {
		if _, err := s.Commit(e, testShards(e, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear epoch 2's manifest mid-file.
	mp := epochDirName(2) + "/" + manifestName
	raw, err := fs.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(mp, raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreEpoch(2); !errors.Is(err, ErrTornManifest) {
		t.Fatalf("RestoreEpoch(2) = %v, want ErrTornManifest", err)
	}
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 2)
}

func TestRestoreEmptyStore(t *testing.T) {
	s := mustOpen(t, NewMemFS(), Config{})
	if _, err := s.Restore(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore on empty store = %v, want ErrNoCheckpoint", err)
	}
}

func TestScrubRepairsAndCondemns(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{Replicas: 2, Retain: 4})
	for e := uint64(1); e <= 3; e++ {
		if _, err := s.Commit(e, testShards(e, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1: repairable rot (one copy of one shard).
	if err := FlipBit(fs, epochDirName(1)+"/"+shardFileName(1, 0), 5); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: both copies of shard 0 rot — beyond repair.
	if err := FlipBit(fs, epochDirName(2)+"/"+shardFileName(0, 0), 6); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(fs, epochDirName(2)+"/"+shardFileName(0, 1), 7); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 3 {
		t.Fatalf("scrubbed %d epochs, want 3", rep.Epochs)
	}
	if rep.RotDetected != 3 {
		t.Fatalf("rot detected = %d, want 3", rep.RotDetected)
	}
	if rep.Repaired != 1 {
		t.Fatalf("repaired = %d, want 1", rep.Repaired)
	}
	cerr, ok := rep.Condemned[2]
	if !ok || len(rep.Condemned) != 1 {
		t.Fatalf("condemned = %v, want exactly epoch 2", rep.Condemned)
	}
	if !errors.Is(cerr, ErrEpochCondemned) || !errors.Is(cerr, ErrShardRot) {
		t.Fatalf("condemnation error %v lacks typed wrapping", cerr)
	}
	// The condemned epoch is out of the restore sequence; newest wins.
	epochs, err := s.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 3 {
		t.Fatalf("epochs after scrub = %v, want [1 3]", epochs)
	}
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 3, 3)
	// A second scrub over the healed store is clean.
	rep, err = s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RotDetected != 0 || len(rep.Condemned) != 0 {
		t.Fatalf("second scrub found rot=%d condemned=%v", rep.RotDetected, rep.Condemned)
	}
}

func TestOpenSweepsStaleStaging(t *testing.T) {
	fs := NewMemFS()
	s := mustOpen(t, fs, Config{})
	if _, err := s.Commit(1, testShards(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Fake an interrupted commit.
	if err := fs.MkdirAll(stagingDirName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(stagingDirName(2)+"/"+shardFileName(0, 0), []byte("partial")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, fs, Config{})
	names, err := fs.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, ok := parseEpochDir(n, ".staging-"); ok {
			t.Fatalf("stale staging %s survived Open", n)
		}
	}
	cp, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, 2)
}

func TestFaultFSTearsAreDetected(t *testing.T) {
	// A seeded schedule of silent torn writes during commit: restores
	// must still always land on a verified checkpoint (replica repair
	// or previous-epoch fallback), never return garbage.
	mem := NewMemFS()
	inj := faults.NewDiskInjector(faults.DiskFaultConfig{Seed: 1234, PTear: 0.1})
	fs := NewFaultFS(mem, inj)
	s := mustOpen(t, fs, Config{Replicas: 2, Retain: 3})
	s.SetSource(func(epoch uint64, rank int) ([]byte, error) {
		return testShards(epoch, 3)[rank], nil
	})
	committed := []uint64{}
	aborted := 0
	for e := uint64(1); e <= 12; e++ {
		if _, err := s.Commit(e, testShards(e, 3)); err == nil {
			committed = append(committed, e)
		} else {
			// Commit read-back verification turns a silent tear into a
			// clean typed abort — never an untyped failure, never a
			// committed epoch holding a torn shard.
			if !IsTyped(err) {
				t.Fatalf("epoch %d: torn commit aborted with untyped error %v", e, err)
			}
			aborted++
		}
	}
	if _, injected := inj.Counts(); injected == 0 {
		t.Fatal("schedule injected nothing")
	}
	if len(committed) == 0 {
		t.Fatal("no epoch committed under 10% tear rate")
	}
	if aborted == 0 {
		t.Fatal("no commit was aborted by read-back verification under 10% tear rate")
	}
	cp, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range committed {
		if cp.Epoch == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored epoch %d was never committed", cp.Epoch)
	}
	checkShards(t, cp, cp.Epoch, 3)
}

func TestIsTyped(t *testing.T) {
	for _, err := range []error{ErrTornManifest, ErrShardRot, ErrEpochCondemned, ErrNoCheckpoint, ErrCrashed,
		fmt.Errorf("wrap: %w", ErrShardRot)} {
		if !IsTyped(err) {
			t.Errorf("IsTyped(%v) = false", err)
		}
	}
	if IsTyped(errors.New("random")) {
		t.Error("IsTyped(random) = true")
	}
}
