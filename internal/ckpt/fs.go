// Package ckpt is the storage fault domain: a crash-consistent
// compressed checkpoint/restart store. Writers persist per-rank
// compressed shards under a two-phase commit — shards land in a staging
// directory with per-shard CRCs, then a manifest is fsync'd and
// atomically renamed into place — so a crash at any instant leaves
// either the previous complete checkpoint or the new one, never a torn
// hybrid. Restart loads the newest valid manifest, verifies every shard
// digest before decode, and read-repairs shards that fail verification
// from a surviving replica copy or by re-compressing from source; a
// background Scrub pass walks retained epochs, detects silent bit rot,
// and repairs or condemns.
//
// All storage goes through the FS interface so the fault soaks can
// inject torn writes, bit rot, stalls and crash-mid-commit kills at
// syscall granularity (FaultFS), and the crash-sweep tests can model
// fsync-aware durability in memory (MemFS).
package ckpt

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the slash-separated filesystem surface the store runs on,
// rooted at the store directory. WriteFile contents are NOT durable
// until Sync(path) returns; Rename is atomic.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the names of a directory's entries, sorted.
	ReadDir(path string) ([]string, error)
	// ReadFile returns a file's current contents.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or truncates a file with the given contents.
	WriteFile(path string, data []byte) error
	// Sync makes a file's contents (or a directory's entries) durable.
	Sync(path string) error
	// Rename atomically moves a file or directory.
	Rename(oldPath, newPath string) error
	// RemoveAll deletes a file or directory tree; missing paths are not
	// an error.
	RemoveAll(path string) error
}

// DirFS is the production FS: a real directory tree under Root.
type DirFS struct {
	Root string
}

// NewDirFS returns an FS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &DirFS{Root: dir}, nil
}

func (d *DirFS) abs(p string) string { return filepath.Join(d.Root, filepath.FromSlash(p)) }

// MkdirAll implements FS.
func (d *DirFS) MkdirAll(p string) error { return os.MkdirAll(d.abs(p), 0o777) }

// ReadDir implements FS.
func (d *DirFS) ReadDir(p string) ([]string, error) {
	ents, err := os.ReadDir(d.abs(p))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(p string) ([]byte, error) { return os.ReadFile(d.abs(p)) }

// WriteFile implements FS.
func (d *DirFS) WriteFile(p string, data []byte) error {
	return os.WriteFile(d.abs(p), data, 0o666)
}

// Sync implements FS: fsync on the file or directory.
func (d *DirFS) Sync(p string) error {
	f, err := os.Open(d.abs(p))
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Rename implements FS.
func (d *DirFS) Rename(oldPath, newPath string) error {
	return os.Rename(d.abs(oldPath), d.abs(newPath))
}

// RemoveAll implements FS.
func (d *DirFS) RemoveAll(p string) error { return os.RemoveAll(d.abs(p)) }

// memFile models one file's durability state: dirty is what the page
// cache holds, durable is what survives a crash. A file whose contents
// were never synced disappears entirely at a crash.
type memFile struct {
	dirty   []byte
	durable []byte
	synced  bool
}

// MemFS is an in-memory FS with fsync-aware crash semantics: Crash()
// reverts every file to its last-synced contents and drops files that
// were never synced, so tests can prove the commit protocol's fsync
// ordering actually carries the durability, not accident. Directory
// creations and renames are modelled as immediately durable (the
// journalled-metadata simplification); file *data* is not.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory FS with the root directory
// present.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true},
	}
}

func clean(p string) string {
	p = path.Clean("/" + p)[1:]
	if p == "" {
		return "."
	}
	return p
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = clean(p)
	for p != "." {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(p string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = clean(p)
	if !m.dirs[p] {
		return nil, &os.PathError{Op: "readdir", Path: p, Err: os.ErrNotExist}
	}
	seen := map[string]bool{}
	collect := func(child string) {
		if p == "." {
			if i := strings.IndexByte(child, '/'); i >= 0 {
				child = child[:i]
			}
			seen[child] = true
			return
		}
		if strings.HasPrefix(child, p+"/") {
			rest := child[len(p)+1:]
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			seen[rest] = true
		}
	}
	for f := range m.files {
		collect(f)
	}
	for d := range m.dirs {
		if d != "." {
			collect(d)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS: it serves the latest (page-cache) contents.
func (m *MemFS) ReadFile(p string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(p)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: p, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.dirty...), nil
}

// WriteFile implements FS: the new contents are dirty until Sync.
func (m *MemFS) WriteFile(p string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = clean(p)
	if dir := path.Dir(p); !m.dirs[dir] {
		return &os.PathError{Op: "write", Path: p, Err: os.ErrNotExist}
	}
	f, ok := m.files[p]
	if !ok {
		f = &memFile{}
		m.files[p] = f
	}
	f.dirty = append([]byte(nil), data...)
	return nil
}

// Sync implements FS: file contents become durable (directories are a
// no-op under the journalled-metadata simplification).
func (m *MemFS) Sync(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = clean(p)
	if f, ok := m.files[p]; ok {
		f.durable = append([]byte(nil), f.dirty...)
		f.synced = true
		return nil
	}
	if m.dirs[p] {
		return nil
	}
	return &os.PathError{Op: "sync", Path: p, Err: os.ErrNotExist}
}

// Rename implements FS: atomic for files and whole directory trees.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldPath, newPath = clean(oldPath), clean(newPath)
	if f, ok := m.files[oldPath]; ok {
		delete(m.files, oldPath)
		m.files[newPath] = f
		for p := path.Dir(newPath); p != "."; p = path.Dir(p) {
			m.dirs[p] = true
		}
		return nil
	}
	if !m.dirs[oldPath] {
		return &os.PathError{Op: "rename", Path: oldPath, Err: os.ErrNotExist}
	}
	moved := map[string]*memFile{}
	for f, mf := range m.files {
		if strings.HasPrefix(f, oldPath+"/") {
			moved[newPath+f[len(oldPath):]] = mf
			delete(m.files, f)
		}
	}
	for f, mf := range moved {
		m.files[f] = mf
	}
	for d := range m.dirs {
		if d == oldPath || strings.HasPrefix(d, oldPath+"/") {
			delete(m.dirs, d)
			m.dirs[newPath+d[len(oldPath):]] = true
		}
	}
	for p := path.Dir(newPath); p != "."; p = path.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

// RemoveAll implements FS.
func (m *MemFS) RemoveAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = clean(p)
	delete(m.files, p)
	for f := range m.files {
		if strings.HasPrefix(f, p+"/") {
			delete(m.files, f)
		}
	}
	for d := range m.dirs {
		if d == p || strings.HasPrefix(d, p+"/") {
			delete(m.dirs, d)
		}
	}
	return nil
}

// Crash simulates a process/power loss: every file reverts to its
// last-synced contents, and files whose data was never synced vanish.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p, f := range m.files {
		if !f.synced {
			delete(m.files, p)
			continue
		}
		f.dirty = append([]byte(nil), f.durable...)
	}
}

// FlipBit flips one bit of a file in place without going through the
// write path — the injection primitive for silent bit rot in committed
// checkpoints. The bit index is taken modulo the file's size in bits.
func FlipBit(fs FS, p string, bit uint64) error {
	data, err := fs.ReadFile(p)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("ckpt: cannot rot empty file %s", p)
	}
	bit %= uint64(len(data)) * 8
	data[bit/8] ^= 1 << (bit % 8)
	if err := fs.WriteFile(p, data); err != nil {
		return err
	}
	return fs.Sync(p)
}
