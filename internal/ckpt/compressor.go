package ckpt

import (
	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/fleet"
)

// Compressor encodes and decodes shard payloads. The key names the
// shard ("epoch-…/shard-…") so fleet-backed implementations can route
// it with affinity; local implementations ignore it. Implementations
// must be deterministic — the repair ladder re-compresses a shard from
// source and expects the manifest digest to match — and safe for
// concurrent use.
type Compressor interface {
	Compress(key string, data []byte) ([]byte, error)
	Decompress(key string, msg []byte, maxOut int) ([]byte, error)
}

// CheckedCompressor is the optional hop-carried-checksum extension of
// Compressor: CompressChecked also returns the CRC of the message
// computed at the compression source (the library's own digest of the
// bytes it produced, or a fleet response digest already verified
// against the remote source). Commit verifies the bytes it is about to
// stage against the carried digest — so corruption between the
// compressor hop and the staging write is a typed abort, not a
// committed epoch of damaged shards — and records the carried value in
// the manifest instead of recomputing one from possibly-damaged bytes.
type CheckedCompressor interface {
	Compressor
	CompressChecked(key string, data []byte) (msg []byte, crc uint32, err error)
}

// LibraryCompressor runs shards through a local core.Library — the
// single-node path where every rank compresses on its own DPU.
type LibraryCompressor struct {
	Lib    *core.Library
	Design core.Design
	Type   core.DataType
}

// Compress implements Compressor.
func (c *LibraryCompressor) Compress(_ string, data []byte) ([]byte, error) {
	msg, _, err := c.Lib.Compress(c.Design, c.Type, data)
	return msg, err
}

// Decompress implements Compressor.
func (c *LibraryCompressor) Decompress(_ string, msg []byte, maxOut int) ([]byte, error) {
	out, _, err := c.Lib.Decompress(c.Design.Engine, c.Type, msg, maxOut)
	return out, err
}

// CompressChecked implements CheckedCompressor: the carried digest is
// the library's MsgCRC, computed over the message as it left the
// compression path.
func (c *LibraryCompressor) CompressChecked(_ string, data []byte) ([]byte, uint32, error) {
	msg, rep, err := c.Lib.Compress(c.Design, c.Type, data)
	return msg, rep.MsgCRC, err
}

// RouterCompressor runs shards through a fleet.Router, so checkpoint
// shards compress on remote pedald instances with the fleet's failover,
// hedging and shedding semantics. Shard keys ride into the router's
// consistent hashing, spreading one checkpoint's shards across the
// fleet while keeping each shard's retries affine.
type RouterCompressor struct {
	Router *fleet.Router
	Design core.Design
	Type   core.DataType
	// Tenant and Class fill the routing request; checkpoint I/O defaults
	// to best-effort unless Class is set to fleet.Gold.
	Tenant string
	Class  fleet.Class
}

func (c *RouterCompressor) req(key string) fleet.Request {
	return fleet.Request{Tenant: c.Tenant, Key: key, Class: c.Class, Idempotent: true}
}

// Compress implements Compressor.
func (c *RouterCompressor) Compress(key string, data []byte) ([]byte, error) {
	return c.Router.Compress(c.req(key), c.Design, c.Type, data)
}

// Decompress implements Compressor.
func (c *RouterCompressor) Decompress(key string, msg []byte, maxOut int) ([]byte, error) {
	return c.Router.Decompress(c.req(key), c.Design.Engine, c.Type, msg, maxOut)
}

// CompressChecked implements CheckedCompressor: the shard hop runs with
// checksums on both directions, so the message handed back was already
// verified against the remote source digest; its CRC is carried onward
// for Commit's staging verification.
func (c *RouterCompressor) CompressChecked(key string, data []byte) ([]byte, uint32, error) {
	msg, err := c.Router.CompressChecked(c.req(key), c.Design, c.Type, data)
	if err != nil {
		return nil, 0, err
	}
	return msg, checksum.CRC32(msg), nil
}

// NopCompressor stores shards verbatim — unit tests and raw archival.
type NopCompressor struct{}

// Compress implements Compressor.
func (NopCompressor) Compress(_ string, data []byte) ([]byte, error) {
	return append([]byte(nil), data...), nil
}

// Decompress implements Compressor.
func (NopCompressor) Decompress(_ string, msg []byte, _ int) ([]byte, error) {
	return append([]byte(nil), msg...), nil
}

// CompressChecked implements CheckedCompressor.
func (NopCompressor) CompressChecked(_ string, data []byte) ([]byte, uint32, error) {
	out := append([]byte(nil), data...)
	return out, checksum.CRC32(out), nil
}
