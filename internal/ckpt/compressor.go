package ckpt

import (
	"pedal/internal/core"
	"pedal/internal/fleet"
)

// Compressor encodes and decodes shard payloads. The key names the
// shard ("epoch-…/shard-…") so fleet-backed implementations can route
// it with affinity; local implementations ignore it. Implementations
// must be deterministic — the repair ladder re-compresses a shard from
// source and expects the manifest digest to match — and safe for
// concurrent use.
type Compressor interface {
	Compress(key string, data []byte) ([]byte, error)
	Decompress(key string, msg []byte, maxOut int) ([]byte, error)
}

// LibraryCompressor runs shards through a local core.Library — the
// single-node path where every rank compresses on its own DPU.
type LibraryCompressor struct {
	Lib    *core.Library
	Design core.Design
	Type   core.DataType
}

// Compress implements Compressor.
func (c *LibraryCompressor) Compress(_ string, data []byte) ([]byte, error) {
	msg, _, err := c.Lib.Compress(c.Design, c.Type, data)
	return msg, err
}

// Decompress implements Compressor.
func (c *LibraryCompressor) Decompress(_ string, msg []byte, maxOut int) ([]byte, error) {
	out, _, err := c.Lib.Decompress(c.Design.Engine, c.Type, msg, maxOut)
	return out, err
}

// RouterCompressor runs shards through a fleet.Router, so checkpoint
// shards compress on remote pedald instances with the fleet's failover,
// hedging and shedding semantics. Shard keys ride into the router's
// consistent hashing, spreading one checkpoint's shards across the
// fleet while keeping each shard's retries affine.
type RouterCompressor struct {
	Router *fleet.Router
	Design core.Design
	Type   core.DataType
	// Tenant and Class fill the routing request; checkpoint I/O defaults
	// to best-effort unless Class is set to fleet.Gold.
	Tenant string
	Class  fleet.Class
}

func (c *RouterCompressor) req(key string) fleet.Request {
	return fleet.Request{Tenant: c.Tenant, Key: key, Class: c.Class, Idempotent: true}
}

// Compress implements Compressor.
func (c *RouterCompressor) Compress(key string, data []byte) ([]byte, error) {
	return c.Router.Compress(c.req(key), c.Design, c.Type, data)
}

// Decompress implements Compressor.
func (c *RouterCompressor) Decompress(key string, msg []byte, maxOut int) ([]byte, error) {
	return c.Router.Decompress(c.req(key), c.Design.Engine, c.Type, msg, maxOut)
}

// NopCompressor stores shards verbatim — unit tests and raw archival.
type NopCompressor struct{}

// Compress implements Compressor.
func (NopCompressor) Compress(_ string, data []byte) ([]byte, error) {
	return append([]byte(nil), data...), nil
}

// Decompress implements Compressor.
func (NopCompressor) Decompress(_ string, msg []byte, _ int) ([]byte, error) {
	return append([]byte(nil), msg...), nil
}
