package ckpt

import (
	"fmt"

	"pedal/internal/stats"
)

// ScrubReport summarises one scrub pass over the retained epochs.
type ScrubReport struct {
	// Epochs is how many committed epochs were walked; ShardCopies how
	// many shard files were digest-checked.
	Epochs      int
	ShardCopies int
	// RotDetected counts copies failing verification (torn or rotten);
	// Repaired counts copies rewritten from a surviving replica or
	// source.
	RotDetected int
	Repaired    int
	// Condemned lists epochs retired as unrecoverable, with the typed
	// error that condemned each.
	Condemned map[uint64]error
}

// Scrub walks every committed epoch oldest-first, verifies the manifest
// and every shard copy, repairs what a surviving replica or the source
// can rebuild, and condemns epochs beyond repair: the directory is
// renamed out of the restore sequence and the condemnation recorded
// with a typed error (ErrEpochCondemned wrapping ErrTornManifest or
// ErrShardRot). Scrub itself only fails on FS breakage — rot is its
// job, not its error.
func (s *Store) Scrub() (ScrubReport, error) {
	rep := ScrubReport{Condemned: map[uint64]error{}}
	epochs, err := s.Epochs()
	if err != nil {
		return rep, err
	}
	for _, e := range epochs {
		rep.Epochs++
		if cerr := s.scrubEpoch(e, &rep); cerr != nil {
			// Unrecoverable: retire the epoch from the restore set.
			rep.Condemned[e] = fmt.Errorf("%w: epoch %d: %w", ErrEpochCondemned, e, cerr)
			s.bd.Inc(stats.CounterCkptCondemned)
			s.trace("condemn", epochDirName(e), cerr.Error())
			if rerr := s.fs.Rename(epochDirName(e), condemnedDirName(e)); rerr != nil {
				return rep, rerr
			}
		}
	}
	return rep, nil
}

// scrubEpoch verifies and repairs one epoch in place. A typed error
// means the epoch cannot be made whole.
func (s *Store) scrubEpoch(epoch uint64, rep *ScrubReport) error {
	dir := epochDirName(epoch)
	raw, err := s.fs.ReadFile(dir + "/" + manifestName)
	if err != nil {
		s.bd.Inc(stats.CounterCkptTornManifests)
		return fmt.Errorf("%w: %v", ErrTornManifest, err)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		s.bd.Inc(stats.CounterCkptTornManifests)
		return err
	}
	if m.Epoch != epoch {
		s.bd.Inc(stats.CounterCkptTornManifests)
		return fmt.Errorf("%w: directory epoch %d vs manifest epoch %d", ErrTornManifest, epoch, m.Epoch)
	}
	for rank := range m.Shards {
		rep.ShardCopies += int(m.Replicas)
		_, rot, repaired, err := s.loadShard(dir, m, rank)
		rep.RotDetected += rot
		rep.Repaired += repaired
		if err != nil {
			return err
		}
	}
	return nil
}
