package ckpt

import (
	"bytes"
	"errors"
	"fmt"

	"pedal/internal/checksum"
	"pedal/internal/stats"
)

// Checkpoint is one restored epoch: every shard decoded after passing
// digest verification (directly or via repair).
type Checkpoint struct {
	Epoch    uint64
	Manifest *Manifest
	// Shards holds the decompressed per-rank state.
	Shards [][]byte
	// RotDetected counts shard copies that failed verification during
	// this restore; Repaired counts copies rewritten from a surviving
	// replica or from source.
	RotDetected int
	Repaired    int
}

// Restore loads the newest restorable checkpoint: epochs are tried
// newest-first, every shard digest is verified before decode, and
// shards that fail verification run the repair ladder (replica copy,
// then source re-compression) instead of aborting. An epoch that stays
// unrecoverable is skipped — restart lands on the previous complete
// checkpoint, never on a torn hybrid. With no restorable epoch at all,
// the error wraps ErrNoCheckpoint plus the newest epoch's failure.
func (s *Store) Restore() (*Checkpoint, error) {
	epochs, err := s.Epochs()
	if err != nil {
		return nil, err
	}
	var firstErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		cp, err := s.RestoreEpoch(epochs[i])
		if err == nil {
			return cp, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		s.trace("restore_skip", epochDirName(epochs[i]), err.Error())
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w: newest failure: %w", ErrNoCheckpoint, firstErr)
	}
	return nil, ErrNoCheckpoint
}

// RestoreEpoch loads one specific epoch with full verification and
// read-repair.
func (s *Store) RestoreEpoch(epoch uint64) (*Checkpoint, error) {
	dir := epochDirName(epoch)
	raw, err := s.fs.ReadFile(dir + "/" + manifestName)
	if err != nil {
		return nil, fmt.Errorf("%w: epoch %d: %v", ErrTornManifest, epoch, err)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		s.bd.Inc(stats.CounterCkptTornManifests)
		return nil, fmt.Errorf("epoch %d: %w", epoch, err)
	}
	if m.Epoch != epoch {
		s.bd.Inc(stats.CounterCkptTornManifests)
		return nil, fmt.Errorf("%w: epoch %d manifest claims epoch %d", ErrTornManifest, epoch, m.Epoch)
	}
	cp := &Checkpoint{Epoch: epoch, Manifest: m, Shards: make([][]byte, len(m.Shards))}
	for rank := range m.Shards {
		payload, rot, repaired, err := s.loadShard(dir, m, rank)
		cp.RotDetected += rot
		cp.Repaired += repaired
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", epoch, err)
		}
		out, err := s.cfg.Compressor.Decompress(dir+"/"+shardFileName(rank, 0), payload, s.cfg.MaxShardBytes)
		if err != nil {
			// A digest-verified payload that fails decode means the
			// whole epoch was written by a broken encoder; treat it as
			// rot beyond repair.
			return nil, fmt.Errorf("epoch %d: %w: shard %d decode: %v", epoch, ErrShardRot, rank, err)
		}
		cp.Shards[rank] = out
	}
	s.bd.Inc(stats.CounterCkptRestores)
	s.trace("restore", dir, "")
	return cp, nil
}

// verifyPayload checks one on-disk shard copy against its manifest
// record.
func verifyPayload(payload []byte, info ShardInfo) bool {
	return uint64(len(payload)) == info.Size && checksum.CRC32(payload) == info.CRC
}

// loadShard returns a digest-verified compressed payload for one rank,
// walking the repair ladder:
//
//	rung 0 — read a copy whose size and CRC match the manifest;
//	rung 1 — a failed copy is quarantined and rewritten from the first
//	         surviving replica;
//	rung 2 — with every copy gone, the shard is re-materialised from
//	         Source and re-compressed; a digest match proves the
//	         round-trip and repairs the files in place;
//	rung 3 — nothing left: typed ErrShardRot.
func (s *Store) loadShard(dir string, m *Manifest, rank int) (payload []byte, rot, repaired int, err error) {
	info := m.Shards[rank]
	var good []byte
	var bad []uint8
	for c := uint8(0); c < m.Replicas; c++ {
		p := dir + "/" + shardFileName(rank, c)
		data, rerr := s.fs.ReadFile(p)
		if rerr == nil && verifyPayload(data, info) {
			if good == nil {
				good = data
			}
			continue
		}
		// Torn, rotten or missing copy.
		rot++
		s.bd.Inc(stats.CounterCkptRotDetected)
		s.trace("rot_detected", p, "")
		bad = append(bad, c)
	}
	if good == nil {
		// Rung 2: re-materialise from source.
		if s.source == nil {
			return nil, rot, repaired, fmt.Errorf("%w: shard %d, all %d copies failed, no source",
				ErrShardRot, rank, m.Replicas)
		}
		orig, serr := s.source(m.Epoch, rank)
		if serr != nil {
			return nil, rot, repaired, fmt.Errorf("%w: shard %d, all copies failed, source: %v",
				ErrShardRot, rank, serr)
		}
		key := dir + "/" + shardFileName(rank, 0)
		recomp, cerr := s.cfg.Compressor.Compress(key, orig)
		if cerr != nil {
			return nil, rot, repaired, fmt.Errorf("%w: shard %d re-compress: %v", ErrShardRot, rank, cerr)
		}
		if !verifyPayload(recomp, info) {
			// Distinguish "the source data changed / the manifest is wrong"
			// from "the compressor itself is unstable": a second run over
			// the same input that disagrees with the first convicts the
			// compressor, which no repair rung can work around.
			if again, aerr := s.cfg.Compressor.Compress(key, orig); aerr == nil && !bytes.Equal(recomp, again) {
				return nil, rot, repaired, fmt.Errorf("%w: shard %d re-compression runs differ",
					ErrNondeterministic, rank)
			}
			return nil, rot, repaired, fmt.Errorf("%w: shard %d source re-compression digest mismatch",
				ErrShardRot, rank)
		}
		good = recomp
	}
	// Repair every bad copy from the verified bytes.
	for _, c := range bad {
		p := dir + "/" + shardFileName(rank, c)
		s.quarantine(p)
		if werr := s.fs.WriteFile(p, good); werr == nil {
			if serr := s.fs.Sync(p); serr == nil {
				repaired++
				s.bd.Inc(stats.CounterCkptRepairs)
				s.trace("repair", p, "")
			}
		}
	}
	return good, rot, repaired, nil
}

// quarantine moves a failed shard copy aside (best-effort) so forensic
// bits survive the rewrite.
func (s *Store) quarantine(p string) {
	if err := s.fs.MkdirAll(quarantineDir); err != nil {
		return
	}
	name := p
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			name = name[:i] + "_" + name[i+1:]
		}
	}
	_ = s.fs.Rename(p, quarantineDir+"/"+name)
}

// IsTyped reports whether an error is one of the store's typed storage
// errors (vs an unexpected/untyped failure) — soak bookkeeping.
func IsTyped(err error) bool {
	return errors.Is(err, ErrTornManifest) || errors.Is(err, ErrShardRot) ||
		errors.Is(err, ErrEpochCondemned) || errors.Is(err, ErrNoCheckpoint) ||
		errors.Is(err, ErrCrashed) || errors.Is(err, ErrNondeterministic)
}
