package ckpt

import (
	"bytes"
	"testing"
)

// FuzzManifest throws arbitrary bytes at the manifest decoder: it must
// never panic or over-allocate, and everything it accepts must survive
// an encode/decode round-trip unchanged.
func FuzzManifest(f *testing.F) {
	seeds := []*Manifest{
		{Epoch: 1, Replicas: 1, Shards: []ShardInfo{{Size: 10, CRC: 0xdeadbeef}}},
		{Epoch: 1 << 40, Replicas: 4, Algo: 2, DataType: 1, BoundMode: 1, ErrorBound: 1e-4,
			Shards: []ShardInfo{{Size: 1, CRC: 1}, {Size: 2, CRC: 2}, {Size: 3, CRC: 3}}},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
		// Truncations and single-byte corruptions widen the corpus.
		enc := m.Encode()
		f.Add(enc[:len(enc)/2])
		flip := append([]byte(nil), enc...)
		flip[len(flip)-1] ^= 0x01
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("PCKM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if len(m.Shards) > MaxShards {
			t.Fatalf("decoder accepted %d shards past the bound", len(m.Shards))
		}
		enc := m.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input is not canonical: % x vs % x", data, enc)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if m2.Epoch != m.Epoch || m2.Replicas != m.Replicas || len(m2.Shards) != len(m.Shards) {
			t.Fatal("round-trip mismatch")
		}
	})
}
