package ckpt

import (
	"errors"
	"testing"

	"pedal/internal/faults"
)

// commitOps counts the mutating FS operations one commit of epoch 2
// performs, by dry-running it through a fault-free injector.
func commitOps(t *testing.T, ranks, replicas int) int {
	t.Helper()
	mem := NewMemFS()
	s := mustOpen(t, mem, Config{Replicas: replicas})
	if _, err := s.Commit(1, testShards(1, ranks)); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewDiskInjector(faults.DiskFaultConfig{})
	s2 := mustOpen(t, NewFaultFS(mem, inj), Config{Replicas: replicas})
	if _, err := s2.Commit(2, testShards(2, ranks)); err != nil {
		t.Fatal(err)
	}
	ops, _ := inj.Counts()
	return int(ops)
}

// TestCrashAtEverySyscall is the atomicity proof: kill the committer at
// every single mutating syscall of a commit (torn write at the kill
// point, all unsynced state dropped), restart over the surviving bytes,
// and require that restore always lands on a complete verified
// checkpoint — the previous epoch or the new one, never a hybrid and
// never an untyped error.
func TestCrashAtEverySyscall(t *testing.T) {
	const ranks, replicas = 3, 2
	total := commitOps(t, ranks, replicas)
	if total < 10 {
		t.Fatalf("commit took only %d ops; protocol shrank?", total)
	}
	sawOld, sawNew := false, false
	for k := 1; k <= total+1; k++ {
		// Fresh store with epoch 1 committed cleanly.
		mem := NewMemFS()
		s := mustOpen(t, mem, Config{Replicas: replicas})
		if _, err := s.Commit(1, testShards(1, ranks)); err != nil {
			t.Fatal(err)
		}
		// Commit epoch 2 with the kill switch armed at syscall k.
		inj := faults.NewDiskInjector(faults.DiskFaultConfig{Seed: uint64(k), CrashAfterOps: k})
		ffs := NewFaultFS(mem, inj)
		s2 := mustOpen(t, ffs, Config{Replicas: replicas})
		_, err := s2.Commit(2, testShards(2, ranks))
		if k <= total {
			if !ffs.Crashed() {
				t.Fatalf("k=%d: kill switch never fired", k)
			}
			// A kill on the post-rename root fsync is past the commit
			// point: Commit rightly reports success. Anywhere else it
			// must fail with the typed crash error.
			if err != nil && !errors.Is(err, ErrCrashed) {
				t.Fatalf("k=%d: commit err = %v, want nil or ErrCrashed", k, err)
			}
		} else if err != nil {
			t.Fatalf("k=%d (past last op): commit failed: %v", k, err)
		}

		// Restart: a new process opens the surviving bytes.
		s3 := mustOpen(t, ffs.Underlying(), Config{Replicas: replicas})
		cp, rerr := s3.Restore()
		if rerr != nil {
			t.Fatalf("k=%d: restore after crash failed: %v", k, rerr)
		}
		switch cp.Epoch {
		case 1:
			sawOld = true
		case 2:
			sawNew = true
		default:
			t.Fatalf("k=%d: restored impossible epoch %d", k, cp.Epoch)
		}
		if err == nil && cp.Epoch != 2 {
			t.Fatalf("k=%d: commit reported success but restore found epoch %d", k, cp.Epoch)
		}
		checkShards(t, cp, cp.Epoch, ranks)
		if cp.RotDetected != 0 {
			t.Fatalf("k=%d: restored epoch %d with rot=%d; crash must not corrupt committed data",
				k, cp.Epoch, cp.RotDetected)
		}
	}
	// The sweep must have exercised both outcomes.
	if !sawOld || !sawNew {
		t.Fatalf("sweep one-sided: sawOld=%v sawNew=%v", sawOld, sawNew)
	}
}

// TestCrashLeavesStagingForNextOpen proves the recovery half: a store
// killed before its rename leaves a .staging- directory behind, and the
// next Open sweeps it without touching the committed epoch.
func TestCrashLeavesStagingForNextOpen(t *testing.T) {
	const ranks, replicas = 2, 1
	mem := NewMemFS()
	s := mustOpen(t, mem, Config{Replicas: replicas})
	if _, err := s.Commit(1, testShards(1, ranks)); err != nil {
		t.Fatal(err)
	}
	// Kill late in the commit (after shard writes, before the rename):
	// ops = stale RemoveAll + MkdirAll + ranks*(write+sync) + manifest
	// write; killing there leaves a populated staging directory...
	k := 2 + 2*ranks + 1
	inj := faults.NewDiskInjector(faults.DiskFaultConfig{Seed: 7, CrashAfterOps: k})
	s2 := mustOpen(t, NewFaultFS(mem, inj), Config{Replicas: replicas})
	if _, err := s2.Commit(2, testShards(2, ranks)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit err = %v, want ErrCrashed", err)
	}
	// ...but only its synced contents survive the power loss.
	staging := false
	names, err := mem.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, ok := parseEpochDir(n, ".staging-"); ok {
			staging = true
		}
	}
	if !staging {
		t.Fatal("no staging directory survived the crash")
	}
	s3 := mustOpen(t, mem, Config{Replicas: replicas})
	cp, err := s3.Restore()
	if err != nil {
		t.Fatal(err)
	}
	checkShards(t, cp, 1, ranks)
	names, err = mem.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, ok := parseEpochDir(n, ".staging-"); ok {
			t.Fatalf("stale staging %s survived Open", n)
		}
	}
}
