package ckpt

import (
	"errors"
	"sync"
	"time"

	"pedal/internal/faults"
)

// ErrCrashed is returned by every mutating operation of a FaultFS whose
// CrashMidCommit trigger has fired: the process is "dead" and the store
// holds exactly the bytes that were durable at the kill point.
var ErrCrashed = errors.New("ckpt: store crashed mid-commit (injected)")

// crasher is implemented by filesystems that can drop unsynced state at
// a simulated power loss (MemFS).
type crasher interface{ Crash() }

// FaultFS wraps an FS and applies a seeded faults.DiskInjector schedule
// to every mutating operation: torn writes (a prefix lands, the call
// "succeeds"), silent bit rot at write time, injected stalls, and a
// crash-mid-commit kill switch after which all mutations fail with
// ErrCrashed and leave the store untouched. Reads are never faulted —
// rot in committed data is injected explicitly with FlipBit so
// detection counts stay exact.
type FaultFS struct {
	fs  FS
	inj *faults.DiskInjector
	// sleep is swappable for tests; nil means time.Sleep.
	sleep func(time.Duration)

	mu   sync.Mutex
	dead bool
}

// NewFaultFS wraps fs with the injector's fault schedule. A nil
// injector passes everything through.
func NewFaultFS(fs FS, inj *faults.DiskInjector) *FaultFS {
	return &FaultFS{fs: fs, inj: inj}
}

// Underlying returns the wrapped FS — the view a *restarted* process
// has of the store after the injected crash killed this one.
func (f *FaultFS) Underlying() FS { return f.fs }

// Crashed reports whether the kill switch has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// apply draws one decision and handles the classes common to all
// mutating ops: stalls sleep and pass through, the first crash decision
// marks the FS dead (the caller applies its op-specific torn effect,
// then the power loss), later ones fail without touching anything.
// The bool result reports whether this call is the kill point itself.
func (f *FaultFS) apply() (faults.DiskDecision, bool, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return faults.DiskDecision{}, false, ErrCrashed
	}
	d := f.inj.Next()
	if d.Class == faults.CrashMidCommit {
		f.dead = true
		f.mu.Unlock()
		return d, true, ErrCrashed
	}
	f.mu.Unlock()
	if d.Class == faults.DiskStall {
		if f.sleep != nil {
			f.sleep(d.Stall)
		} else {
			time.Sleep(d.Stall)
		}
		d.Class = faults.None
	}
	return d, false, nil
}

// powerLoss drops all unsynced store state, if the FS models that.
func (f *FaultFS) powerLoss() {
	if c, ok := f.fs.(crasher); ok {
		c.Crash()
	}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(p string) error {
	if _, kill, err := f.apply(); err != nil {
		if kill {
			f.powerLoss()
		}
		return err
	}
	return f.fs.MkdirAll(p)
}

// WriteFile implements FS, the main injection point: tears leave a
// prefix and succeed; rot flips one bit and succeeds; the crash kill
// tears the write, drops unsynced store state, and fails.
func (f *FaultFS) WriteFile(p string, data []byte) error {
	d, kill, err := f.apply()
	if err != nil {
		if kill {
			// The kill point lands mid-write: a torn prefix reaches the
			// page cache, then the power goes.
			f.fs.WriteFile(p, data[:int(d.Frac*float64(len(data)))])
			f.powerLoss()
		}
		return err
	}
	switch d.Class {
	case faults.DiskTear:
		n := int(d.Frac * float64(len(data)))
		return f.fs.WriteFile(p, data[:n])
	case faults.DiskRot:
		if len(data) > 0 {
			rotted := append([]byte(nil), data...)
			bit := d.Bit % (uint64(len(rotted)) * 8)
			rotted[bit/8] ^= 1 << (bit % 8)
			return f.fs.WriteFile(p, rotted)
		}
	}
	return f.fs.WriteFile(p, data)
}

// Sync implements FS.
func (f *FaultFS) Sync(p string) error {
	if _, kill, err := f.apply(); err != nil {
		if kill {
			f.powerLoss()
		}
		return err
	}
	return f.fs.Sync(p)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if _, kill, err := f.apply(); err != nil {
		if kill {
			f.powerLoss()
		}
		return err
	}
	return f.fs.Rename(oldPath, newPath)
}

// RemoveAll implements FS.
func (f *FaultFS) RemoveAll(p string) error {
	if _, kill, err := f.apply(); err != nil {
		if kill {
			f.powerLoss()
		}
		return err
	}
	return f.fs.RemoveAll(p)
}

// ReadDir implements FS (reads are never faulted).
func (f *FaultFS) ReadDir(p string) ([]string, error) { return f.fs.ReadDir(p) }

// ReadFile implements FS (reads are never faulted).
func (f *FaultFS) ReadFile(p string) ([]byte, error) { return f.fs.ReadFile(p) }
