package doca

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

func newFaultyCtx(t *testing.T, cfg faults.Config, policy RetryPolicy) (*Context, *stats.Breakdown) {
	t.Helper()
	dev, err := dpu.NewDevice(hwmodel.BlueField2, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	dev.SetFaultInjector(faults.NewInjector(cfg))
	bd := stats.NewBreakdown()
	ctx, err := Init(dev, bd)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRetryPolicy(policy)
	return ctx, bd
}

var resilienceSrc = []byte(strings.Repeat("doca resilience path ", 400))

func TestTransientFaultRetriedToSuccess(t *testing.T) {
	ctx, bd := newFaultyCtx(t,
		faults.Config{Seed: 7, PTransient: 0.6},
		RetryPolicy{MaxAttempts: 10},
	)
	ctx.MMap(resilienceSrc)
	res, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, resilienceSrc, 0)
	if err != nil {
		t.Fatalf("retries did not absorb transient faults: %v", err)
	}
	if bd.Count(stats.CounterRetries) == 0 {
		t.Fatal("no retries recorded despite 60% transient rate")
	}
	if bd.Get(stats.PhaseRetry) == 0 {
		t.Fatal("retry backoff charged no virtual time")
	}
	ctx.MMap(res.Output)
	dec, err := ctx.Submit(hwmodel.Deflate, hwmodel.Decompress, res.Output, len(resilienceSrc)+16)
	if err != nil || !bytes.Equal(dec.Output, resilienceSrc) {
		t.Fatalf("round trip under faults failed: %v", err)
	}
}

func TestPersistentFaultFailsFast(t *testing.T) {
	ctx, bd := newFaultyCtx(t,
		faults.Config{Seed: 7, PPersistent: 1.0},
		RetryPolicy{MaxAttempts: 10},
	)
	ctx.MMap(resilienceSrc)
	_, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, resilienceSrc, 0)
	if !errors.Is(err, dpu.ErrHardware) {
		t.Fatalf("want ErrHardware, got %v", err)
	}
	if got := bd.Count(stats.CounterRetries); got != 0 {
		t.Fatalf("persistent error was retried %d times", got)
	}
}

func TestCorruptionDetectedAndRetried(t *testing.T) {
	// Corrupt the first two attempts only; the third succeeds.
	ctx, bd := newFaultyCtx(t,
		faults.Config{Seed: 7, PCorrupt: 1.0, MaxInjections: 2},
		RetryPolicy{MaxAttempts: 5},
	)
	ctx.MMap(resilienceSrc)
	res, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, resilienceSrc, 0)
	if err != nil {
		t.Fatalf("corruption not recovered: %v", err)
	}
	if got := bd.Count(stats.CounterCorruptions); got != 2 {
		t.Fatalf("corruptions detected = %d, want 2", got)
	}
	if bd.Count(stats.CounterRetries) != 2 {
		t.Fatalf("retries = %d, want 2", bd.Count(stats.CounterRetries))
	}
	if len(res.Output) == 0 {
		t.Fatal("no output from recovered submit")
	}
}

func TestCorruptionExhaustsRetries(t *testing.T) {
	ctx, bd := newFaultyCtx(t,
		faults.Config{Seed: 7, PCorrupt: 1.0},
		RetryPolicy{MaxAttempts: 3},
	)
	ctx.MMap(resilienceSrc)
	_, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, resilienceSrc, 0)
	if !errors.Is(err, dpu.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after exhausted retries, got %v", err)
	}
	if got := bd.Count(stats.CounterCorruptions); got != 3 {
		t.Fatalf("corruptions = %d, want 3", got)
	}
}

func TestJobDeadlineFires(t *testing.T) {
	ctx, bd := newFaultyCtx(t,
		faults.Config{Seed: 7, PHang: 1.0, HangDelay: 50 * time.Millisecond},
		RetryPolicy{MaxAttempts: 2, JobDeadline: 5 * time.Millisecond},
	)
	ctx.MMap(resilienceSrc)
	_, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, resilienceSrc, 0)
	if !errors.Is(err, dpu.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if bd.Count(stats.CounterTimeouts) == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

func TestRetryPolicyNormalization(t *testing.T) {
	p := RetryPolicy{}.normalized()
	def := DefaultRetryPolicy()
	if p.MaxAttempts != def.MaxAttempts || p.BaseBackoff != def.BaseBackoff || p.MaxBackoff != def.MaxBackoff {
		t.Fatalf("zero policy did not normalize to defaults: %+v vs %+v", p, def)
	}
}
