// Package doca is a faithful-in-structure model of the NVIDIA DOCA SDK
// surface PEDAL uses: device open, memory maps between regular and
// DOCA-operable memory, buffer inventories, work queues, and compress /
// decompress job submission (paper §III, Figs. 3-4).
//
// The package's central job is cost accounting with real execution: every
// SDK step performs the real work through the simulated C-Engine and
// charges calibrated virtual time to a stats.Breakdown, so the paper's
// "initialisation and buffer preparation consume ≈90-94% of execution
// time" observation — and PEDAL's hoisting of those costs into
// PEDAL_Init — are observable, measurable effects.
package doca

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// Errors returned by the SDK layer.
var (
	ErrNotMapped = errors.New("doca: buffer not DOCA-mapped")
	ErrClosed    = errors.New("doca: context closed")
)

// RetryPolicy bounds Submit's handling of transient C-Engine failures:
// queue-full rejections, transient faults, detected output corruption,
// and missed deadlines are retried with exponential backoff plus jitter;
// persistent hardware failures and capability misses fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of submissions tried (first
	// attempt included); zero or negative means 4.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; zero means 50µs.
	// The delay doubles per retry, capped at MaxBackoff (zero: 5ms),
	// and is charged as virtual time to stats.PhaseRetry.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JobDeadline bounds each attempt's completion wait; zero waits
	// forever. A missed deadline counts as a transient failure.
	JobDeadline time.Duration
}

// DefaultRetryPolicy returns the policy Context starts with.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}
}

func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// Context is an initialised DOCA environment bound to one device: the
// analogue of the doca_dev + doca_compress + progress-engine bundle a
// real application sets up once.
type Context struct {
	dev *dpu.Device
	rng *faults.Rand

	// mu guards the mutable context state below. The context has its own
	// lock (rather than borrowing the caller's) because Reopen runs on
	// the engine watchdog goroutine during a hot-reset, concurrently with
	// whatever operation lost its job to the wedge.
	mu      sync.Mutex
	bd      *stats.Breakdown
	inited  bool
	closed  bool
	policy  RetryPolicy
	reopens uint64

	// mapped tracks registered buffers (identity by slice backing array
	// start). Real DOCA refuses jobs on unregistered memory.
	mapped map[*byte]int
}

// Init opens the device and builds the DOCA environment, charging the
// one-time initialisation cost (engine contexts, progress engine, work
// queues) to the breakdown's PhaseDOCAInit. The paper's baseline calls
// this per message; PEDAL calls it once inside PEDAL_Init.
func Init(dev *dpu.Device, bd *stats.Breakdown) (*Context, error) {
	if dev == nil {
		return nil, errors.New("doca: nil device")
	}
	c := &Context{
		dev: dev, bd: bd, mapped: make(map[*byte]int),
		policy: DefaultRetryPolicy(),
		rng:    faults.NewRand(1),
	}
	bd.Add(stats.PhaseDOCAInit, hwmodel.InitCost(dev.Generation()))
	c.inited = true
	return c, nil
}

// SetRetryPolicy replaces the transient-failure handling policy.
func (c *Context) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	c.policy = p
	c.mu.Unlock()
}

// RetryPolicy returns the active policy.
func (c *Context) RetryPolicy() RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// Device returns the underlying DPU.
func (c *Context) Device() *dpu.Device { return c.dev }

// Close tears down the context. The device itself stays open (it may be
// shared); real DOCA reference-counts the same way.
func (c *Context) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// sink returns the current accounting target; the Breakdown itself is
// concurrency-safe, only the pointer needs the lock (SwapBreakdown).
func (c *Context) sink() *stats.Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bd
}

// Reopen models the DOCA device re-open performed during an engine
// hot-reset: every memory-map registration built against the dead engine
// context is invalidated (real DOCA work queues and buf inventories do
// not survive a context destroy), the rebuild cost is charged to
// PhaseReset, and callers must re-register buffers before submitting
// again. core installs this as the engine's reset hook so accounting and
// mapping state track the hardware state machine.
func (c *Context) Reopen() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.mapped = make(map[*byte]int)
	c.reopens++
	bd := c.bd
	c.mu.Unlock()
	bd.Add(stats.PhaseReset, hwmodel.ResetCost(c.dev.Generation()))
}

// Reopens reports how many hot-reset re-opens this context performed.
func (c *Context) Reopens() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reopens
}

// MMap registers buf as DOCA-operable memory, charging the buffer
// preparation cost (allocation + pinning + inventory registration). A
// buffer must be mapped before jobs may reference it.
func (c *Context) MMap(buf []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if len(buf) == 0 {
		c.mu.Unlock()
		return nil
	}
	c.mapped[&buf[0]] = len(buf)
	bd := c.bd
	c.mu.Unlock()
	bd.Add(stats.PhaseBufPrep, hwmodel.BufPrepCost(c.dev.Generation(), hwmodel.CEngine, len(buf)))
	return nil
}

// RegisterPrewarmed records buf as DOCA-operable without charging
// preparation cost: the buffer belongs to a pool whose mapping was paid
// once at PEDAL_Init (paper §III-C). Baseline runs must use MMap instead.
func (c *Context) RegisterPrewarmed(buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if len(buf) == 0 {
		return nil
	}
	c.mapped[&buf[0]] = len(buf)
	return nil
}

// IsMapped reports whether buf was previously registered with MMap.
func (c *Context) IsMapped(buf []byte) bool {
	if len(buf) == 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.mapped[&buf[0]]
	return ok && n >= len(buf)
}

// Unmap releases a registration.
func (c *Context) Unmap(buf []byte) {
	if len(buf) == 0 {
		return
	}
	c.mu.Lock()
	delete(c.mapped, &buf[0])
	c.mu.Unlock()
}

// Result carries a completed job's output and its modelled duration.
type Result struct {
	Output  []byte
	Virtual time.Duration
}

// Submit runs algo/op over input on the C-Engine, charging the modelled
// hardware time to the appropriate phase. input must be DOCA-mapped.
// When the hardware lacks the path, Submit fails with
// dpu.ErrUnsupported — PEDAL's capability fallback then redirects the
// operation to the SoC.
//
// Transient failures (queue full, transient engine faults, checksum
// mismatches, missed deadlines) are retried per the RetryPolicy with
// exponential backoff; the backoff delays are charged as virtual time to
// stats.PhaseRetry and counted in stats.CounterRetries. Engine output is
// verified against the engine-reported CRC before being returned, so
// corruption is detected here rather than propagated.
func (c *Context) Submit(algo hwmodel.Algo, op hwmodel.Op, input []byte, maxOutput int) (Result, error) {
	return c.SubmitCtx(context.Background(), algo, op, input, maxOutput)
}

// SubmitCtx is Submit bounded by a caller deadline: the retry loop
// checkpoints ctx before every attempt and the completion wait selects
// on it, so work the caller has abandoned stops at the next checkpoint
// with a typed dpu.ErrDeadline (counted as a deadline_abandoned event)
// instead of burning attempts nobody is waiting for. A background
// context takes exactly the classic Submit path.
func (c *Context) SubmitCtx(ctx context.Context, algo hwmodel.Algo, op hwmodel.Op, input []byte, maxOutput int) (Result, error) {
	c.mu.Lock()
	closed := c.closed
	p := c.policy.normalized()
	c.mu.Unlock()
	if closed {
		return Result{}, ErrClosed
	}
	if !c.IsMapped(input) {
		return Result{}, fmt.Errorf("%w: submit requires a registered source buffer", ErrNotMapped)
	}
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if ctx != nil && ctx.Err() != nil {
			c.sink().Inc(stats.CounterDeadlineAbandoned)
			return Result{}, fmt.Errorf("doca: abandoned before attempt %d: %w: %v",
				attempt+1, dpu.ErrDeadline, ctx.Err())
		}
		if attempt > 0 {
			bd := c.sink()
			bd.Inc(stats.CounterRetries)
			bd.Add(stats.PhaseRetry, faults.Backoff(attempt-1, p.BaseBackoff, p.MaxBackoff, c.rng))
		}
		res, err := c.submitOnce(ctx, algo, op, input, maxOutput, p)
		if err == nil {
			return res, nil
		}
		if !dpu.IsTransient(err) {
			return Result{}, err
		}
		if ctx != nil && ctx.Err() != nil {
			// The attempt failed because the caller's deadline expired
			// mid-wait: that is an abandonment, not a transient to retry.
			c.sink().Inc(stats.CounterDeadlineAbandoned)
			return Result{}, err
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("doca: %v %v failed after %d attempts: %w", algo, op, p.MaxAttempts, lastErr)
}

// submitOnce performs one submission attempt: enqueue, bounded wait,
// checksum verification, cost accounting.
func (c *Context) submitOnce(ctx context.Context, algo hwmodel.Algo, op hwmodel.Op, input []byte, maxOutput int, p RetryPolicy) (Result, error) {
	job := dpu.Job{Algo: algo, Op: op, Input: input, MaxOutput: maxOutput}
	if p.JobDeadline > 0 {
		// Stamp the deadline on the descriptor too, so the engine can
		// drop the job at dequeue once we have stopped waiting for it.
		job.Deadline = time.Now().Add(p.JobDeadline)
	}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (job.Deadline.IsZero() || d.Before(job.Deadline)) {
			job.Deadline = d
		}
	}
	h, err := c.dev.CEngine().Submit(job)
	if err != nil {
		return Result{}, err
	}
	res, ok := h.WaitContextTimeout(ctx, p.JobDeadline)
	if !ok {
		c.sink().Inc(stats.CounterTimeouts)
		return Result{}, res.Err
	}
	if res.Err != nil {
		return Result{}, res.Err
	}
	if sum := checksum.CRC32(res.Output); sum != res.Checksum {
		c.sink().Inc(stats.CounterCorruptions)
		return Result{}, fmt.Errorf("%w: CRC 0x%08x != engine 0x%08x over %d bytes",
			dpu.ErrCorrupt, sum, res.Checksum, len(res.Output))
	}
	phase := stats.PhaseCompress
	if op == hwmodel.Decompress {
		phase = stats.PhaseDecompress
	}
	c.sink().Add(phase, res.Virtual)
	return Result{Output: res.Output, Virtual: res.Virtual}, nil
}

// SoCRun models running algo/op in software on the SoC cores: the real
// work is done by the caller (PEDAL invokes the Go codecs directly); this
// helper charges the calibrated virtual time. It exists on Context so all
// accounting flows through one object.
func (c *Context) SoCRun(algo hwmodel.Algo, op hwmodel.Op, n int) (time.Duration, error) {
	d, ok := hwmodel.OpCost(c.dev.Generation(), hwmodel.SoC, algo, op, n)
	if !ok {
		return 0, fmt.Errorf("doca: no SoC cost model for %v %v", algo, op)
	}
	phase := stats.PhaseCompress
	if op == hwmodel.Decompress {
		phase = stats.PhaseDecompress
	}
	c.sink().Add(phase, d)
	return d, nil
}

// SoCBufPrep charges a plain SoC-side allocation (no DOCA mapping).
func (c *Context) SoCBufPrep(n int) {
	c.sink().Add(stats.PhaseBufPrep, hwmodel.BufPrepCost(c.dev.Generation(), hwmodel.SoC, n))
}

// Breakdown exposes the accounting sink (used by experiments).
func (c *Context) Breakdown() *stats.Breakdown { return c.sink() }

// SwapBreakdown redirects subsequent charges to bd and returns the
// previous sink. PEDAL uses this to produce per-operation reports while
// still accumulating a library-lifetime total.
func (c *Context) SwapBreakdown(bd *stats.Breakdown) *stats.Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.bd
	c.bd = bd
	return old
}
