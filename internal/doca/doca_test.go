package doca

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

func newCtx(t *testing.T, gen hwmodel.Generation) (*Context, *stats.Breakdown) {
	t.Helper()
	dev, err := dpu.NewDevice(gen, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	bd := stats.NewBreakdown()
	ctx, err := Init(dev, bd)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, bd
}

func TestInitChargesInitCost(t *testing.T) {
	_, bd := newCtx(t, hwmodel.BlueField2)
	if got := bd.Get(stats.PhaseDOCAInit); got != hwmodel.InitCost(hwmodel.BlueField2) {
		t.Fatalf("init cost = %v, want %v", got, hwmodel.InitCost(hwmodel.BlueField2))
	}
}

func TestMMapChargesBufPrep(t *testing.T) {
	ctx, bd := newCtx(t, hwmodel.BlueField2)
	buf := make([]byte, 1<<20)
	before := bd.Get(stats.PhaseBufPrep)
	if err := ctx.MMap(buf); err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.PhaseBufPrep) <= before {
		t.Fatal("MMap charged nothing")
	}
	if !ctx.IsMapped(buf) {
		t.Fatal("buffer not tracked as mapped")
	}
	ctx.Unmap(buf)
	if ctx.IsMapped(buf) {
		t.Fatal("unmap did not release")
	}
}

func TestSubmitRequiresMapping(t *testing.T) {
	ctx, _ := newCtx(t, hwmodel.BlueField2)
	src := []byte(strings.Repeat("must be mapped first ", 100))
	if _, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, src, 0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("want ErrNotMapped, got %v", err)
	}
}

func TestSubmitCompressDecompress(t *testing.T) {
	ctx, bd := newCtx(t, hwmodel.BlueField2)
	src := []byte(strings.Repeat("full doca path ", 500))
	if err := ctx.MMap(src); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.PhaseCompress) != res.Virtual {
		t.Fatal("compression virtual time not charged")
	}
	if err := ctx.MMap(res.Output); err != nil {
		t.Fatal(err)
	}
	dec, err := ctx.Submit(hwmodel.Deflate, hwmodel.Decompress, res.Output, len(src)+16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Output, src) {
		t.Fatal("round trip mismatch")
	}
	if bd.Get(stats.PhaseDecompress) != dec.Virtual {
		t.Fatal("decompression virtual time not charged")
	}
}

func TestUnsupportedPathSurfaces(t *testing.T) {
	ctx, _ := newCtx(t, hwmodel.BlueField3)
	src := []byte("bf3 cannot compress on the engine")
	ctx.MMap(src)
	if _, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, src, 0); !errors.Is(err, dpu.ErrUnsupported) {
		t.Fatalf("want dpu.ErrUnsupported, got %v", err)
	}
}

func TestSoCRunCharges(t *testing.T) {
	ctx, bd := newCtx(t, hwmodel.BlueField2)
	d, err := ctx.SoCRun(hwmodel.Deflate, hwmodel.Compress, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || bd.Get(stats.PhaseCompress) != d {
		t.Fatal("SoC run not charged")
	}
}

func TestClosedContext(t *testing.T) {
	ctx, _ := newCtx(t, hwmodel.BlueField2)
	ctx.Close()
	if err := ctx.MMap(make([]byte, 8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("MMap after close: %v", err)
	}
	if _, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, []byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close: %v", err)
	}
}

// The paper's §V-C observation: on a 5.1 MB dataset, init + buffer prep
// dominate an un-hoisted C-Engine run at ≈94%.
func TestInitOverheadDominatesSmallMessages(t *testing.T) {
	dev, err := dpu.NewDevice(hwmodel.BlueField2, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	bd := stats.NewBreakdown()
	// Baseline behaviour: init + map + compress + decompress per message.
	xmlSize := 51 * (1 << 20) / 10 // 5.1 MB, the silesia/xml size
	src := bytes.Repeat([]byte("<entry>silesia-xml-like textual content</entry>\n"), xmlSize/48)
	ctx, err := Init(dev, bd)
	if err != nil {
		t.Fatal(err)
	}
	ctx.MMap(src)
	res, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx.MMap(res.Output)
	if _, err := ctx.Submit(hwmodel.Deflate, hwmodel.Decompress, res.Output, len(src)+64); err != nil {
		t.Fatal(err)
	}
	overhead := bd.Get(stats.PhaseDOCAInit) + bd.Get(stats.PhaseBufPrep)
	frac := float64(overhead) / float64(bd.Total())
	if frac < 0.88 || frac > 0.99 {
		t.Fatalf("overhead fraction = %.3f, want ≈0.94 (paper §V-C)", frac)
	}
}

func TestSoftwareCanDecodeEngineOutput(t *testing.T) {
	ctx, _ := newCtx(t, hwmodel.BlueField2)
	src := []byte(strings.Repeat("engine to software ", 300))
	ctx.MMap(src)
	res, err := ctx.Submit(hwmodel.Deflate, hwmodel.Compress, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flate.Decompress(res.Output)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("software decode failed: %v", err)
	}
}
