package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/service"
	"pedal/internal/stats"
	"pedal/internal/trace"
)

// Backend is one shard's client surface. *service.Client implements it;
// tests substitute in-memory fakes.
type Backend interface {
	Compress(d core.Design, dt core.DataType, data []byte) ([]byte, error)
	Decompress(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error)
	Health() (service.Health, error)
	Ping() error
	Close() error
}

// CheckedBackend is the optional hop-carried-checksum extension of
// Backend: both directions of the shard hop carry a CRC digest and a
// mismatch surfaces as a typed integrity.ErrCorrupt. *service.Client
// implements it. Backends without it fall back to the unchecked calls.
type CheckedBackend interface {
	CompressChecked(d core.Design, dt core.DataType, data []byte) ([]byte, error)
	DecompressChecked(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error)
}

// Class is a request priority class. Overload sheds best-effort first:
// gold requests are never load-shed by the router, are spread across
// replicas when a shard answers busy, and are the only class hedged
// (hedging buys tail latency with duplicate work — a budget reserved
// for traffic that paid for it).
type Class uint8

const (
	// BestEffort is load-shed first under overload, with a typed busy
	// error carrying a Retry-After hint.
	BestEffort Class = iota
	// Gold is the protected class: failover, busy-retry across replicas,
	// and latency-percentile hedging keep it alive through single-shard
	// failures.
	Gold
)

func (c Class) String() string {
	if c == Gold {
		return "gold"
	}
	return "best-effort"
}

// Request carries the routing metadata of one fleet operation.
type Request struct {
	// Tenant names the quota bucket; empty means unmetered.
	Tenant string
	// Key selects the shard via consistent hashing (typically
	// tenant+object key, so one tenant's objects spread but each object
	// is served with affinity).
	Key string
	// Class is the priority class.
	Class Class
	// Idempotent marks the request safe to re-execute: eligible for
	// failover to another shard and (gold only) hedging. Compression and
	// decompression are idempotent; callers doing stateful operations
	// must leave this false.
	Idempotent bool
}

// ErrNoShards reports that no live shard is available to route to.
var ErrNoShards = errors.New("fleet: no live shards")

// ShedError is a router-side load shed: the primary shard for the key
// is saturated and the request's class does not entitle it to queue.
// errors.Is(err, service.ErrBusy) matches it, and the Retry-After hint
// travels via service.RetryAfter.
type ShedError struct {
	Shard      string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("fleet: shard %s saturated, best-effort shed (retry after %v)", e.Shard, e.RetryAfter)
}

// Is makes every router shed satisfy errors.Is(err, service.ErrBusy).
func (e *ShedError) Is(target error) bool { return target == service.ErrBusy }

// RetryAfterDuration exposes the hint to service.RetryAfter.
func (e *ShedError) RetryAfterDuration() time.Duration { return e.RetryAfter }

// QuotaError is a per-tenant quota rejection: the tenant already has its
// full in-flight allowance running. Like ShedError it matches ErrBusy
// and carries a Retry-After hint.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("fleet: tenant %q over quota (retry after %v)", e.Tenant, e.RetryAfter)
}

// Is makes quota rejections satisfy errors.Is(err, service.ErrBusy).
func (e *QuotaError) Is(target error) bool { return target == service.ErrBusy }

// RetryAfterDuration exposes the hint to service.RetryAfter.
func (e *QuotaError) RetryAfterDuration() time.Duration { return e.RetryAfter }

// Config tunes the router. The zero value is serviceable: 64 vnodes,
// bounded load c=1.25, 2 failover attempts, adaptive hedging off until
// HedgeQuantile is set, no quotas, health thresholds at 3 strikes.
type Config struct {
	// Replicas is the virtual-node count per shard; zero means
	// DefaultReplicas.
	Replicas int
	// LoadFactor is the bounded-load factor c: a shard whose in-flight
	// count exceeds ceil(c·(total+1)/live) is skipped as primary and its
	// keys spill to ring successors. Zero means 1.25; negative disables
	// bounded load.
	LoadFactor float64

	// FailoverAttempts is how many additional shards an idempotent
	// request may try after the primary fails with a peer-class error.
	// Zero means 2; negative disables failover.
	FailoverAttempts int
	// HedgeQuantile arms adaptive hedging for gold idempotent requests:
	// when the primary has not answered within this quantile of recent
	// fleet latency, a second attempt is launched on the next shard and
	// the first completion wins. Zero disables adaptive hedging.
	HedgeQuantile float64
	// HedgeDelay, when positive, is a fixed hedge delay overriding the
	// quantile estimate (deterministic tests).
	HedgeDelay time.Duration
	// HedgeMinDelay/HedgeMaxDelay clamp the adaptive delay; zero means
	// 1ms / 250ms. HedgeMinSamples gates hedging until the latency
	// window has that many observations (zero means 16).
	HedgeMinDelay   time.Duration
	HedgeMaxDelay   time.Duration
	HedgeMinSamples int

	// ShardCapacity bounds router-side in-flight per shard: best-effort
	// requests whose primary is at capacity are shed immediately with a
	// Retry-After hint. Zero means unlimited. Gold is never load-shed by
	// the router (the daemons' own admission still bounds it).
	ShardCapacity int
	// DefaultTenantQuota caps a tenant's in-flight requests; zero means
	// unlimited. TenantQuotas overrides per tenant (values <= 0 mean
	// unlimited for that tenant).
	DefaultTenantQuota int
	TenantQuotas       map[string]int
	// GoldBusyRetries re-runs the whole routing sequence (with jittered
	// backoff honoring Retry-After) when a gold request is shed by every
	// candidate. Zero means 3; negative disables.
	GoldBusyRetries int
	// RetryAfterHint is carried on router-side sheds; zero means 2ms.
	RetryAfterHint time.Duration

	// EjectAfter is the consecutive-failure streak (data path or probe)
	// that ejects a shard from routing; zero means 3. ReadmitAfter is
	// the half-open probe success streak that readmits it; zero means 1.
	EjectAfter   int
	ReadmitAfter int
	// ProbeTimeout bounds one health-plane probe (dial + ping + health);
	// zero means 250ms.
	ProbeTimeout time.Duration
	// DegradeAfter treats successful requests slower than this as
	// evidence of a degraded shard: EjectAfter consecutive slow answers
	// eject it just like hard failures. Zero disables.
	DegradeAfter time.Duration

	// RequestTimeout bounds each shard attempt; zero means 5s.
	RequestTimeout time.Duration
	// RequestBudget bounds one whole routed operation end to end —
	// every failover, hedge, and gold busy-retry draws from the same
	// budget, so a request cannot outlive its caller's patience by
	// retrying. Zero means 4× RequestTimeout; negative disables the
	// end-to-end deadline (classic unbounded retries).
	RequestBudget time.Duration
	// Dial opens a connection to a shard address with the given
	// round-trip timeout. Nil uses service.DialTimeout.
	Dial func(addr string, timeout time.Duration) (Backend, error)
	// Tracer, when set, records routing decisions (sheds, failovers,
	// hedges, ejections, drains) under Engine "fleet".
	Tracer *trace.Tracer
	// Seed seeds the backoff-jitter PRNG; zero selects the fixed
	// default (deterministic either way).
	Seed uint64
}

func (c *Config) replicas() int {
	if c.Replicas <= 0 {
		return DefaultReplicas
	}
	return c.Replicas
}

func (c *Config) loadFactor() float64 {
	if c.LoadFactor == 0 {
		return 1.25
	}
	return c.LoadFactor
}

func (c *Config) failoverAttempts() int {
	if c.FailoverAttempts == 0 {
		return 2
	}
	if c.FailoverAttempts < 0 {
		return 0
	}
	return c.FailoverAttempts
}

func (c *Config) goldBusyRetries() int {
	if c.GoldBusyRetries == 0 {
		return 3
	}
	if c.GoldBusyRetries < 0 {
		return 0
	}
	return c.GoldBusyRetries
}

func (c *Config) retryAfterHint() time.Duration {
	if c.RetryAfterHint <= 0 {
		return 2 * time.Millisecond
	}
	return c.RetryAfterHint
}

func (c *Config) ejectAfter() int {
	if c.EjectAfter <= 0 {
		return 3
	}
	return c.EjectAfter
}

func (c *Config) readmitAfter() int {
	if c.ReadmitAfter <= 0 {
		return 1
	}
	return c.ReadmitAfter
}

func (c *Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return 250 * time.Millisecond
	}
	return c.ProbeTimeout
}

func (c *Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RequestTimeout
}

func (c *Config) requestBudget() time.Duration {
	if c.RequestBudget < 0 {
		return 0
	}
	if c.RequestBudget == 0 {
		return 4 * c.requestTimeout()
	}
	return c.RequestBudget
}

func (c *Config) hedgeMinSamples() int {
	if c.HedgeMinSamples <= 0 {
		return 16
	}
	return c.HedgeMinSamples
}

func (c *Config) hedgeClamp(d time.Duration) time.Duration {
	lo, hi := c.HedgeMinDelay, c.HedgeMaxDelay
	if lo <= 0 {
		lo = time.Millisecond
	}
	if hi <= 0 {
		hi = 250 * time.Millisecond
	}
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// shardState is a shard's health-plane state. Only live shards receive
// new requests; the ring itself is membership-stable, so state flips
// never reshuffle unrelated keys.
type shardState uint8

const (
	stateLive shardState = iota
	stateEjected
	stateDraining
	stateDrained
)

func (s shardState) String() string {
	switch s {
	case stateLive:
		return "live"
	case stateEjected:
		return "ejected"
	case stateDraining:
		return "draining"
	default:
		return "drained"
	}
}

// Shard is one pedald instance under the router.
type Shard struct {
	ID   string
	Addr string

	// inflight counts router-side attempts currently running against
	// this shard (bounded-load input and drain barrier).
	inflight atomic.Int64

	connMu sync.Mutex
	conn   Backend

	// Guarded by Router.mu:
	state         shardState
	failStreak    int    // consecutive peer-class failures (data path + probes)
	slowStreak    int    // consecutive over-DegradeAfter successes
	corruptStreak int    // consecutive checksum-mismatch answers
	okProbes      int    // consecutive half-open probe successes while ejected
	engine        string // last engine fault-domain state reported by Health
	lastErr       string
}

// backend returns the shard's connection, dialing lazily.
func (s *Shard) backend(dial func(string, time.Duration) (Backend, error), timeout time.Duration) (Backend, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conn == nil {
		be, err := dial(s.Addr, timeout)
		if err != nil {
			return nil, err
		}
		s.conn = be
	}
	return s.conn, nil
}

// recycle discards the connection: a timed-out or broken stream is
// desynchronised and must never carry another request.
func (s *Shard) recycle() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// Router maps requests onto a fleet of shards with the resilience
// contract described in the package comment. Safe for concurrent use.
type Router struct {
	cfg Config
	bd  *stats.Breakdown
	lat *latWindow

	mu         sync.Mutex
	shards     map[string]*Shard
	order      []string
	ring       *hashRing
	tenantLoad map[string]int
	rng        *faults.Rand

	pollMu   sync.Mutex
	pollStop chan struct{}
	pollDone chan struct{}
}

// NewRouter builds a router; add shards with AddShard before routing.
func NewRouter(cfg Config) *Router {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (Backend, error) {
			cl, err := service.DialTimeout(addr, timeout)
			if err != nil {
				return nil, err
			}
			cl.Timeout = timeout
			return cl, nil
		}
	}
	return &Router{
		cfg:        cfg,
		bd:         stats.NewBreakdown(),
		lat:        newLatWindow(0),
		shards:     make(map[string]*Shard),
		tenantLoad: make(map[string]int),
		rng:        faults.NewRand(cfg.Seed),
	}
}

// Stats exposes the router's shed/failover/hedge/health counters and
// the virtual time charged to hedge waits and busy backoff.
func (r *Router) Stats() *stats.Breakdown { return r.bd }

// AddShard registers a shard and rebuilds the ring. Adding an existing
// id is a no-op.
func (r *Router) AddShard(id, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[id]; ok {
		return
	}
	r.shards[id] = &Shard{ID: id, Addr: addr, state: stateLive}
	r.rebuildRingLocked()
	r.traceLocked("join", id, "")
}

// RemoveShard unregisters a shard (abrupt removal — prefer Drain for a
// graceful exit) and rebuilds the ring.
func (r *Router) RemoveShard(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shards[id]
	if !ok {
		return
	}
	delete(r.shards, id)
	r.rebuildRingLocked()
	r.traceLocked("remove", id, "")
	go s.recycle()
}

func (r *Router) rebuildRingLocked() {
	ids := make([]string, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	r.order = ids
	r.ring = newRing(ids, r.cfg.replicas())
}

// Close stops the health poll loop and closes every shard connection.
func (r *Router) Close() {
	r.Stop()
	r.mu.Lock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, s := range r.shards {
		shards = append(shards, s)
	}
	r.mu.Unlock()
	for _, s := range shards {
		s.recycle()
	}
}

// Primary returns the shard id a key currently routes to first, or ""
// when no live shard exists. Exposed for operational tooling and tests.
func (r *Router) Primary(key string) string {
	c := r.candidates(key)
	if len(c) == 0 {
		return ""
	}
	return c[0].ID
}

// Compress routes a compression request through the fleet.
func (r *Router) Compress(req Request, d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return r.do(req, func(be Backend) ([]byte, error) { return be.Compress(d, dt, data) })
}

// Decompress routes a decompression request through the fleet.
func (r *Router) Decompress(req Request, engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return r.do(req, func(be Backend) ([]byte, error) { return be.Decompress(engine, dt, msg, maxOut) })
}

// CompressChecked routes a compression request with hop-carried
// checksums on both directions of the shard hop. A digest mismatch is a
// typed integrity error: idempotent requests fail over to another shard
// (the corruption is shard- or path-local, not deterministic), and a
// shard producing ejectAfter consecutive corrupt answers is quarantined
// from routing until the health plane's half-open probes readmit it.
func (r *Router) CompressChecked(req Request, d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return r.do(req, func(be Backend) ([]byte, error) {
		if cb, ok := be.(CheckedBackend); ok {
			return cb.CompressChecked(d, dt, data)
		}
		return be.Compress(d, dt, data)
	})
}

// DecompressChecked routes a decompression request with hop-carried
// checksums (see CompressChecked).
func (r *Router) DecompressChecked(req Request, engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return r.do(req, func(be Backend) ([]byte, error) {
		if cb, ok := be.(CheckedBackend); ok {
			return cb.DecompressChecked(engine, dt, msg, maxOut)
		}
		return be.Decompress(engine, dt, msg, maxOut)
	})
}

// do applies tenant admission, then runs the routing sequence; gold
// requests shed busy by every candidate re-run it after a jittered
// backoff that honors the Retry-After hint. One end-to-end budget
// (RequestBudget) covers the whole sequence: busy-retries, failovers,
// and hedges all inherit what remains of it, and exhaustion surfaces
// as a typed deadline error rather than a sleep past the caller's
// patience.
func (r *Router) do(req Request, op func(Backend) ([]byte, error)) ([]byte, error) {
	release, err := r.admitTenant(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer release()
	var overall time.Time
	if budget := r.cfg.requestBudget(); budget > 0 {
		overall = time.Now().Add(budget)
	}
	for attempt := 0; ; attempt++ {
		body, err := r.doOnce(req, op, overall)
		if err == nil || req.Class != Gold || attempt >= r.cfg.goldBusyRetries() || !errors.Is(err, service.ErrBusy) {
			return body, err
		}
		d := r.busyBackoff(attempt, err)
		if !overall.IsZero() && d >= time.Until(overall) {
			// Sleeping through the backoff would overrun the request's
			// end-to-end budget: abandon the retry sequence, typed.
			r.bd.Inc(stats.CounterDeadlineAbandoned)
			r.trace("deadline_abandoned", req.Key, err.Error())
			return nil, &service.DeadlineError{
				RetryAfter: service.RetryAfter(err),
				Msg:        fmt.Sprintf("fleet: busy-retry backoff %v overruns the request budget", d),
			}
		}
		r.bd.Add(stats.PhaseRetry, d)
		time.Sleep(d)
	}
}

// busyBackoff is the delay before a gold busy-retry: jittered
// exponential backoff, floored by the server's Retry-After hint.
func (r *Router) busyBackoff(attempt int, err error) time.Duration {
	r.mu.Lock()
	d := faults.Backoff(attempt, time.Millisecond, 20*time.Millisecond, r.rng)
	if hint := service.RetryAfter(err); hint > 0 && hint > d {
		d = hint + time.Duration(r.rng.Float64()*float64(hint/2))
	}
	r.mu.Unlock()
	return d
}

// launchKind distinguishes why an attempt was started, for accounting.
type launchKind uint8

const (
	launchPrimary launchKind = iota
	launchFailover
	launchHedge
)

type attemptResult struct {
	body  []byte
	err   error
	kind  launchKind
	shard *Shard
}

// errClass buckets a shard error for the routing policy.
type errClass uint8

const (
	// errClassPeer: the shard is unreachable or unresponsive (dial
	// failure, ErrPeerDead, broken or timed-out stream). Failover-eligible
	// and counted toward ejection.
	errClassPeer errClass = iota
	// errClassBusy: the shard answered — it is alive but saturated.
	errClassBusy
	// errClassRemote: the shard executed the request and returned an
	// application error; another shard would compute the same answer.
	errClassRemote
	// errClassCorrupt: a hop-carried checksum caught damaged bytes on
	// this shard's path. Unlike errClassRemote the answer is not
	// deterministic — another shard (or even a retry) would produce clean
	// bytes — so corrupt answers are failover-eligible, and repeated ones
	// quarantine the shard.
	errClassCorrupt
)

func classify(err error) errClass {
	switch {
	case errors.Is(err, integrity.ErrCorrupt):
		return errClassCorrupt
	case errors.Is(err, service.ErrBusy):
		return errClassBusy
	case errors.Is(err, dpu.ErrDeadline):
		// The shard answered but abandoned the work at its deadline — it
		// is alive and overloaded, exactly like a busy shed: no ejection
		// streak, and gold idempotent requests may fail over to a shard
		// with more headroom.
		return errClassBusy
	case errors.Is(err, service.ErrRemote):
		return errClassRemote
	default:
		return errClassPeer
	}
}

// doOnce runs one pass over the candidate sequence: primary attempt,
// optional hedge after the latency-percentile delay, failover on
// peer-class errors (and on busy, for gold), first success wins.
// Failovers and hedges are only launched while the end-to-end budget
// (overall; zero time = unbounded) has time remaining — a duplicate
// attempt the caller can no longer wait for is wasted shard work.
func (r *Router) doOnce(req Request, op func(Backend) ([]byte, error), overall time.Time) ([]byte, error) {
	cands := r.candidates(req.Key)
	if len(cands) == 0 {
		return nil, ErrNoShards
	}
	primary := cands[0]

	// Priority load shedding: a saturated primary sheds best-effort
	// immediately and explicitly; gold proceeds into the daemons' own
	// admission queues.
	if req.Class == BestEffort && r.cfg.ShardCapacity > 0 &&
		int(primary.inflight.Load()) >= r.cfg.ShardCapacity {
		r.bd.Inc(stats.CounterFleetSheds)
		r.trace("shed", primary.ID, "saturated")
		return nil, &ShedError{Shard: primary.ID, RetryAfter: r.cfg.retryAfterHint()}
	}

	maxAttempts := 1
	if req.Idempotent {
		maxAttempts += r.cfg.failoverAttempts()
	}
	if maxAttempts > len(cands) {
		maxAttempts = len(cands)
	}
	results := make(chan attemptResult, maxAttempts)
	launch := func(s *Shard, kind launchKind) {
		s.inflight.Add(1)
		go func() {
			start := time.Now()
			body, err := r.callShard(s, op)
			s.inflight.Add(-1)
			r.recordOutcome(s, err, time.Since(start))
			results <- attemptResult{body: body, err: err, kind: kind, shard: s}
		}()
	}
	launch(primary, launchPrimary)
	launched, next, outstanding := 1, 1, 1

	var hedgeTimer <-chan time.Time
	var hedgeDelay time.Duration
	if req.Idempotent && req.Class == Gold && launched < maxAttempts {
		if d, ok := r.hedgeDelay(); ok && (overall.IsZero() || time.Until(overall) > d) {
			hedgeDelay = d
			hedgeTimer = time.After(d)
		}
	}

	var firstErr error
	for outstanding > 0 {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.kind == launchHedge {
					r.bd.Inc(stats.CounterHedgeWins)
					r.trace("hedge_win", res.shard.ID, "")
				}
				return res.body, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			class := classify(res.err)
			if class == errClassRemote {
				// Deterministic application error — re-executing
				// elsewhere would fail identically.
				return nil, res.err
			}
			canFailover := req.Idempotent && launched < maxAttempts && next < len(cands)
			if class == errClassBusy && req.Class != Gold {
				// A best-effort shed stands; the caller backs off.
				canFailover = false
			}
			if canFailover && !overall.IsZero() && time.Until(overall) <= 0 {
				// Budget exhausted: a failover attempt could not finish
				// in time the caller still has.
				r.bd.Inc(stats.CounterDeadlineAbandoned)
				r.trace("deadline_abandoned", res.shard.ID, "failover budget exhausted")
				canFailover = false
			}
			if canFailover {
				r.bd.Inc(stats.CounterFailovers)
				r.trace("failover", cands[next].ID, res.err.Error())
				launch(cands[next], launchFailover)
				next++
				launched++
				outstanding++
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launched < maxAttempts && next < len(cands) {
				r.bd.Inc(stats.CounterHedges)
				// The wait that justified the hedge is charged as
				// virtual time, like retry backoff in the engine layer.
				r.bd.Add(stats.PhaseHedgeWait, hedgeDelay)
				r.trace("hedge", cands[next].ID, "")
				launch(cands[next], launchHedge)
				next++
				launched++
				outstanding++
			}
		}
	}
	return nil, firstErr
}

// callShard runs op against the shard's (lazily dialed) connection.
func (r *Router) callShard(s *Shard, op func(Backend) ([]byte, error)) ([]byte, error) {
	be, err := s.backend(r.cfg.Dial, r.cfg.requestTimeout())
	if err != nil {
		return nil, err
	}
	return op(be)
}

// candidates returns the live shards for a key in attempt order:
// bounded-load-adjusted primary first, then the ring successors.
func (r *Router) candidates(key string) []*Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.ring.sequence(key)
	live := make([]*Shard, 0, len(seq))
	for _, id := range seq {
		if s := r.shards[id]; s != nil && s.state == stateLive {
			live = append(live, s)
		}
	}
	c := r.cfg.loadFactor()
	if len(live) < 2 || c <= 0 {
		return live
	}
	var total int64
	for _, s := range live {
		total += s.inflight.Load()
	}
	bound := int64(math.Ceil(c * float64(total+1) / float64(len(live))))
	for i, s := range live {
		if s.inflight.Load() < bound {
			if i == 0 {
				return live
			}
			out := make([]*Shard, 0, len(live))
			out = append(out, s)
			out = append(out, live[:i]...)
			out = append(out, live[i+1:]...)
			return out
		}
	}
	return live
}

// admitTenant claims one in-flight slot of the tenant's quota. The
// release func is idempotent.
func (r *Router) admitTenant(tenant string) (func(), error) {
	quota := r.quotaFor(tenant)
	if quota <= 0 {
		return func() {}, nil
	}
	r.mu.Lock()
	if r.tenantLoad[tenant] >= quota {
		r.mu.Unlock()
		r.bd.Inc(stats.CounterQuotaSheds)
		r.trace("quota_shed", tenant, "")
		return nil, &QuotaError{Tenant: tenant, RetryAfter: r.cfg.retryAfterHint()}
	}
	r.tenantLoad[tenant]++
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			r.tenantLoad[tenant]--
			r.mu.Unlock()
		})
	}, nil
}

func (r *Router) quotaFor(tenant string) int {
	if tenant == "" {
		return 0
	}
	if q, ok := r.cfg.TenantQuotas[tenant]; ok {
		return q
	}
	return r.cfg.DefaultTenantQuota
}

// hedgeDelay resolves the current hedge trigger delay, or false when
// hedging is disabled or the latency window is still warming up.
func (r *Router) hedgeDelay() (time.Duration, bool) {
	if r.cfg.HedgeDelay > 0 {
		return r.cfg.HedgeDelay, true
	}
	if r.cfg.HedgeQuantile <= 0 {
		return 0, false
	}
	if r.lat.size() < r.cfg.hedgeMinSamples() {
		return 0, false
	}
	return r.cfg.hedgeClamp(r.lat.quantile(r.cfg.HedgeQuantile)), true
}

// recordOutcome feeds one attempt's result into the health view: peer
// failures build the ejection streak (and poison the connection), slow
// successes build the degraded streak, clean successes reset both and
// feed the hedge latency estimator.
func (r *Router) recordOutcome(s *Shard, err error, lat time.Duration) {
	if err == nil {
		r.lat.add(lat)
		r.mu.Lock()
		s.failStreak = 0
		s.corruptStreak = 0
		if r.cfg.DegradeAfter > 0 && lat > r.cfg.DegradeAfter {
			s.slowStreak++
			if s.slowStreak >= r.cfg.ejectAfter() {
				r.ejectLocked(s, fmt.Sprintf("degraded: %v per request", lat.Round(time.Millisecond)))
			}
		} else {
			s.slowStreak = 0
		}
		r.mu.Unlock()
		return
	}
	switch classify(err) {
	case errClassBusy, errClassRemote:
		return // the daemon answered; it is alive
	case errClassCorrupt:
		// The shard answered with damaged bytes. The stream itself is
		// intact (the frame was read in full before the digest check), so
		// the connection survives — but the answer counts toward a
		// quarantine streak: a core flipping bits keeps flipping them.
		r.bd.Inc(stats.CounterHopsRejected)
		r.mu.Lock()
		s.corruptStreak++
		s.lastErr = err.Error()
		if s.corruptStreak >= r.cfg.ejectAfter() {
			r.bd.Inc(stats.CounterCoresQuarantined)
			r.ejectLocked(s, "corrupt: "+err.Error())
		}
		r.mu.Unlock()
		return
	}
	s.recycle()
	r.mu.Lock()
	s.failStreak++
	s.lastErr = err.Error()
	if s.failStreak >= r.cfg.ejectAfter() {
		r.ejectLocked(s, err.Error())
	}
	r.mu.Unlock()
}

// ejectLocked removes a live shard from routing. Caller holds r.mu.
func (r *Router) ejectLocked(s *Shard, reason string) {
	if s.state != stateLive {
		return
	}
	s.state = stateEjected
	s.okProbes = 0
	r.bd.Inc(stats.CounterShardEjects)
	r.traceLocked("eject", s.ID, reason)
}

// readmitLocked returns an ejected shard to routing. Caller holds r.mu.
func (r *Router) readmitLocked(s *Shard) {
	if s.state != stateEjected {
		return
	}
	s.state = stateLive
	s.failStreak, s.slowStreak, s.corruptStreak, s.okProbes = 0, 0, 0, 0
	s.lastErr = ""
	r.bd.Inc(stats.CounterShardReadmits)
	r.traceLocked("readmit", s.ID, "")
	go s.recycle() // force a fresh dial; the old conn predates the outage
}

// trace records a fleet routing event (Algo carries the shard/tenant).
func (r *Router) trace(op, who, errText string) {
	r.cfg.Tracer.Record(trace.Event{Engine: "fleet", Op: op, Algo: who, Err: errText})
}

// traceLocked is trace for call sites holding r.mu (the tracer has its
// own lock; this exists only to document the convention).
func (r *Router) traceLocked(op, who, errText string) { r.trace(op, who, errText) }
