package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/stats"
)

// corruptShard is a shard whose checked responses fail digest
// verification while the corrupt flag is up: the hop-level model of a
// core silently flipping bits in every answer.
type corruptShard struct {
	fakeShard
	mu      sync.Mutex
	corrupt bool
}

type corruptConn struct {
	fakeConn
	s *corruptShard
}

func (c *corruptConn) checked(data []byte) ([]byte, error) {
	c.s.mu.Lock()
	corrupt := c.s.corrupt
	c.s.mu.Unlock()
	if corrupt {
		return nil, &integrity.CorruptError{Hop: "service.response", Segment: "compress", Want: 1, Got: 2}
	}
	return c.fakeConn.op(data)
}

func (c *corruptConn) CompressChecked(_ core.Design, _ core.DataType, data []byte) ([]byte, error) {
	return c.checked(data)
}

func (c *corruptConn) DecompressChecked(_ hwmodel.Engine, _ core.DataType, msg []byte, _ int) ([]byte, error) {
	return c.checked(msg)
}

// newCorruptFleet is newTestFleet with shard s0 swapped for a
// checked-capable corruptible shard.
func newCorruptFleet(cfg Config) (*Router, *corruptShard, *fakeFleet) {
	f := &fakeFleet{shards: make(map[string]*fakeShard)}
	cs := &corruptShard{fakeShard: fakeShard{name: "s0"}}
	cfg.Dial = func(addr string, _ time.Duration) (Backend, error) {
		if addr == "addr-s0" {
			return &corruptConn{fakeConn: fakeConn{s: &cs.fakeShard}, s: cs}, nil
		}
		return f.dial(addr, 0)
	}
	r := NewRouter(cfg)
	r.AddShard("s0", "addr-s0")
	for _, name := range []string{"s1", "s2"} {
		f.shards["addr-"+name] = &fakeShard{name: name}
		r.AddShard(name, "addr-"+name)
	}
	return r, cs, f
}

// findCorruptKey returns a key whose primary is s0, so requests hit the
// corruptible shard first.
func findCorruptKey(t *testing.T, r *Router) string {
	t.Helper()
	for _, key := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9"} {
		if r.Primary(key) == "s0" {
			return key
		}
	}
	t.Fatal("no key routes to s0")
	return ""
}

// TestCorruptAnswersFailoverAndQuarantine: a shard answering with
// damaged bytes must not poison the caller — idempotent requests fail
// over to a clean shard — and after EjectAfter consecutive corrupt
// answers the shard is quarantined out of routing.
func TestCorruptAnswersFailoverAndQuarantine(t *testing.T) {
	r, cs, _ := newCorruptFleet(Config{EjectAfter: 2})
	defer r.Close()
	key := findCorruptKey(t, r)
	cs.mu.Lock()
	cs.corrupt = true
	cs.mu.Unlock()

	// Each request: s0 answers corrupt, failover wins on a clean shard.
	for i := 0; i < 2; i++ {
		out, err := r.CompressChecked(goldReq(key), testDesign, core.TypeBytes, []byte("payload"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if len(out) == 0 {
			t.Fatalf("request %d: empty body", i)
		}
	}
	if got := r.bd.Count(stats.CounterHopsRejected); got != 2 {
		t.Fatalf("hops_rejected = %d, want 2", got)
	}
	if got := r.bd.Count(stats.CounterCoresQuarantined); got != 1 {
		t.Fatalf("cores_quarantined = %d, want 1", got)
	}
	// Quarantined: s0 no longer routes, requests go clean without any
	// corrupt detour.
	if r.Primary(key) == "s0" {
		t.Fatal("quarantined shard still primary")
	}
	before := r.bd.Count(stats.CounterHopsRejected)
	if _, err := r.CompressChecked(goldReq(key), testDesign, core.TypeBytes, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := r.bd.Count(stats.CounterHopsRejected); got != before {
		t.Fatal("request still reached the quarantined shard")
	}

	// Repair the shard; the health plane's half-open probe readmits it.
	cs.mu.Lock()
	cs.corrupt = false
	cs.mu.Unlock()
	r.Poll()
	if r.bd.Count(stats.CounterShardReadmits) != 1 {
		t.Fatal("repaired shard not readmitted")
	}
}

// TestCorruptNonIdempotentSurfaces: without idempotence there is no
// failover — the typed corruption error reaches the caller so it can
// decide what re-execution means.
func TestCorruptNonIdempotentSurfaces(t *testing.T) {
	r, cs, _ := newCorruptFleet(Config{EjectAfter: 3})
	defer r.Close()
	key := findCorruptKey(t, r)
	cs.mu.Lock()
	cs.corrupt = true
	cs.mu.Unlock()
	req := Request{Tenant: "t", Key: key, Class: Gold}
	_, err := r.CompressChecked(req, testDesign, core.TypeBytes, []byte("payload"))
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("err = %v, want integrity.ErrCorrupt", err)
	}
}

// TestUncheckedBackendFallback: a backend without the checked surface
// still serves CompressChecked via the plain call.
func TestUncheckedBackendFallback(t *testing.T) {
	r, _ := newTestFleet(2, Config{})
	defer r.Close()
	out, err := r.CompressChecked(goldReq("obj"), testDesign, core.TypeBytes, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty body")
	}
}
