package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/service"
	"pedal/internal/stats"
	"pedal/internal/testutil"
)

// fakeShard is one in-memory shard behind the fake dialer. Behaviour
// flags are flipped mid-test to simulate crashes, wedges and overload.
type fakeShard struct {
	name string

	mu     sync.Mutex
	down   bool // dial refused
	fail   bool // established connections error out
	busy   bool // requests shed with a Retry-After hint
	remote bool // requests fail with a deterministic app error
	delay  time.Duration

	served atomic.Int64
}

func (s *fakeShard) set(f func(*fakeShard)) {
	s.mu.Lock()
	f(s)
	s.mu.Unlock()
}

type fakeConn struct{ s *fakeShard }

func (c *fakeConn) op(data []byte) ([]byte, error) {
	c.s.mu.Lock()
	fail, busy, remote, delay := c.s.fail, c.s.busy, c.s.remote, c.s.delay
	c.s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return nil, errors.New("write: broken pipe")
	}
	if busy {
		return nil, &service.BusyError{RetryAfter: time.Millisecond}
	}
	if remote {
		return nil, fmt.Errorf("%w: bad payload", service.ErrRemote)
	}
	c.s.served.Add(1)
	return append([]byte(c.s.name+":"), data...), nil
}

func (c *fakeConn) Compress(_ core.Design, _ core.DataType, data []byte) ([]byte, error) {
	return c.op(data)
}

func (c *fakeConn) Decompress(_ hwmodel.Engine, _ core.DataType, msg []byte, _ int) ([]byte, error) {
	return c.op(msg)
}

func (c *fakeConn) Health() (service.Health, error) {
	if _, err := c.op(nil); err != nil {
		return service.Health{}, err
	}
	return service.Health{State: "live"}, nil
}

func (c *fakeConn) Ping() error {
	// Pings bypass admission: a busy shard still answers them.
	c.s.mu.Lock()
	fail := c.s.fail
	c.s.mu.Unlock()
	if fail {
		return errors.New("ping: broken pipe")
	}
	return nil
}

func (c *fakeConn) Close() error { return nil }

// fakeFleet owns n fake shards and the dialer wired into the router.
type fakeFleet struct {
	mu     sync.Mutex
	shards map[string]*fakeShard // by address
}

func (f *fakeFleet) dial(addr string, _ time.Duration) (Backend, error) {
	f.mu.Lock()
	s := f.shards[addr]
	f.mu.Unlock()
	if s == nil {
		return nil, errors.New("dial: no such shard")
	}
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		return nil, errors.New("dial: connection refused")
	}
	return &fakeConn{s: s}, nil
}

// newTestFleet builds a router over n fake shards named s0..s(n-1).
func newTestFleet(n int, cfg Config) (*Router, *fakeFleet) {
	f := &fakeFleet{shards: make(map[string]*fakeShard)}
	cfg.Dial = f.dial
	r := NewRouter(cfg)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		addr := "addr-" + name
		f.shards[addr] = &fakeShard{name: name}
		r.AddShard(name, addr)
	}
	return r, f
}

func (f *fakeFleet) shard(name string) *fakeShard {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards["addr-"+name]
}

var testDesign = core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}

func goldReq(key string) Request {
	return Request{Tenant: "t", Key: key, Class: Gold, Idempotent: true}
}

func TestRouterKeyAffinity(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r, _ := newTestFleet(4, Config{})
	defer r.Close()
	first, err := r.Compress(goldReq("object-7"), testDesign, core.TypeBytes, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := r.Compress(goldReq("object-7"), testDesign, core.TypeBytes, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(first) {
			t.Fatalf("key changed shards: %q then %q", first, got)
		}
	}
}

func TestRouterFailover(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r, f := newTestFleet(3, Config{})
	defer r.Close()
	key := "object-42"
	primary := r.Primary(key)
	f.shard(primary).set(func(s *fakeShard) { s.fail = true })
	body, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("data"))
	if err != nil {
		t.Fatalf("failover did not rescue the request: %v", err)
	}
	if string(body) == primary+":data" {
		t.Fatalf("response came from the dead primary %s", primary)
	}
	if got := r.Stats().Count(stats.CounterFailovers); got == 0 {
		t.Fatal("no failover counted")
	}
}

func TestRouterNonIdempotentNeverFailsOver(t *testing.T) {
	r, f := newTestFleet(3, Config{})
	defer r.Close()
	key := "object-9"
	f.shard(r.Primary(key)).set(func(s *fakeShard) { s.fail = true })
	req := Request{Key: key, Class: Gold} // Idempotent: false
	if _, err := r.Compress(req, testDesign, core.TypeBytes, []byte("d")); err == nil {
		t.Fatal("non-idempotent request must not be re-executed elsewhere")
	}
	if got := r.Stats().Count(stats.CounterFailovers); got != 0 {
		t.Fatalf("counted %d failovers for a non-idempotent request", got)
	}
}

func TestRouterRemoteErrorFailsFast(t *testing.T) {
	r, f := newTestFleet(3, Config{})
	defer r.Close()
	key := "object-13"
	f.shard(r.Primary(key)).set(func(s *fakeShard) { s.remote = true })
	_, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("d"))
	if !errors.Is(err, service.ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if got := r.Stats().Count(stats.CounterFailovers); got != 0 {
		t.Fatalf("deterministic app error must not fail over (%d failovers)", got)
	}
}

func TestRouterHedgeFirstWins(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r, f := newTestFleet(3, Config{HedgeDelay: 2 * time.Millisecond})
	defer r.Close()
	key := "object-5"
	primary := r.Primary(key)
	f.shard(primary).set(func(s *fakeShard) { s.delay = 300 * time.Millisecond })

	start := time.Now()
	body, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("hedge did not rescue the tail: took %v", el)
	}
	if string(body) == primary+":d" {
		t.Fatalf("slow primary %s won, expected the hedge", primary)
	}
	if r.Stats().Count(stats.CounterHedges) == 0 || r.Stats().Count(stats.CounterHedgeWins) == 0 {
		t.Fatalf("hedge counters not incremented: %v", r.Stats().Counts())
	}
	if r.Stats().Get(stats.PhaseHedgeWait) == 0 {
		t.Fatal("hedge wait not charged as virtual time")
	}
}

func TestRouterBestEffortShed(t *testing.T) {
	// LoadFactor -1 disables bounded-load spill so the saturated shard
	// stays the key's primary and the shed path is what fires.
	r, f := newTestFleet(3, Config{ShardCapacity: 1, RetryAfterHint: 3 * time.Millisecond, LoadFactor: -1})
	defer r.Close()
	key := "object-2"
	primary := r.Primary(key)
	// Saturate the primary with a genuinely in-flight slow request.
	f.shard(primary).set(func(s *fakeShard) { s.delay = 50 * time.Millisecond })
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("slow"))
	}()
	for r.shardByID(primary).inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	_, err := r.Compress(Request{Key: key, Class: BestEffort, Idempotent: true},
		testDesign, core.TypeBytes, []byte("d"))
	if !errors.Is(err, service.ErrBusy) {
		t.Fatalf("want a typed shed matching ErrBusy, got %v", err)
	}
	if hint := service.RetryAfter(err); hint != 3*time.Millisecond {
		t.Fatalf("Retry-After hint = %v, want 3ms", hint)
	}
	if r.Stats().Count(stats.CounterFleetSheds) == 0 {
		t.Fatal("shed not counted")
	}
	<-done
}

func TestRouterTenantQuota(t *testing.T) {
	r, _ := newTestFleet(2, Config{TenantQuotas: map[string]int{"noisy": 1}})
	defer r.Close()
	r.mu.Lock()
	r.tenantLoad["noisy"] = 1 // one request already in flight
	r.mu.Unlock()
	_, err := r.Compress(Request{Tenant: "noisy", Key: "k", Class: BestEffort, Idempotent: true},
		testDesign, core.TypeBytes, []byte("d"))
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, service.ErrBusy) {
		t.Fatalf("want QuotaError matching ErrBusy, got %v", err)
	}
	if service.RetryAfter(err) <= 0 {
		t.Fatal("quota shed carries no Retry-After hint")
	}
	// Other tenants are unaffected.
	if _, err := r.Compress(Request{Tenant: "quiet", Key: "k", Idempotent: true},
		testDesign, core.TypeBytes, []byte("d")); err != nil {
		t.Fatalf("unrelated tenant shed: %v", err)
	}
}

func TestRouterGoldBusyRetry(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r, f := newTestFleet(2, Config{GoldBusyRetries: 10})
	defer r.Close()
	for i := 0; i < 2; i++ {
		f.shard(fmt.Sprintf("s%d", i)).set(func(s *fakeShard) { s.busy = true })
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		for i := 0; i < 2; i++ {
			f.shard(fmt.Sprintf("s%d", i)).set(func(s *fakeShard) { s.busy = false })
		}
	}()
	if _, err := r.Compress(goldReq("k"), testDesign, core.TypeBytes, []byte("d")); err != nil {
		t.Fatalf("gold request not carried across the busy spell: %v", err)
	}
	if r.Stats().Get(stats.PhaseRetry) == 0 {
		t.Fatal("busy backoff not charged as virtual time")
	}
}

func TestRouterNoShards(t *testing.T) {
	r := NewRouter(Config{Dial: func(string, time.Duration) (Backend, error) {
		return nil, errors.New("unused")
	}})
	defer r.Close()
	if _, err := r.Compress(goldReq("k"), testDesign, core.TypeBytes, nil); !errors.Is(err, ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
}

// shardByID is a test helper reaching the internal shard record.
func (r *Router) shardByID(id string) *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards[id]
}
