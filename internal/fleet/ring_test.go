package fleet

import (
	"fmt"
	"testing"
)

func TestRingSpreadsKeys(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3"}
	r := newRing(ids, DefaultReplicas)
	counts := make(map[string]int)
	const keys = 8000
	for i := 0; i < keys; i++ {
		seq := r.sequence(fmt.Sprintf("tenant-%d/object-%d", i%17, i))
		if len(seq) != len(ids) {
			t.Fatalf("sequence length %d, want %d", len(seq), len(ids))
		}
		counts[seq[0]]++
	}
	for _, id := range ids {
		frac := float64(counts[id]) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %s owns %.1f%% of keys, want a rough balance", id, frac*100)
		}
	}
}

func TestRingSequenceDistinct(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 16)
	seq := r.sequence("some-key")
	seen := make(map[string]bool)
	for _, id := range seq {
		if seen[id] {
			t.Fatalf("duplicate shard %s in sequence %v", id, seq)
		}
		seen[id] = true
	}
	if len(seq) != 3 {
		t.Fatalf("sequence %v misses shards", seq)
	}
}

// Removing one shard must remap only the keys it owned: every other
// key keeps its primary. This is the property that makes drain a
// migration of one hash range rather than a fleet-wide reshuffle.
func TestRingRemovalIsMinimal(t *testing.T) {
	before := newRing([]string{"s0", "s1", "s2", "s3", "s4"}, DefaultReplicas)
	after := newRing([]string{"s0", "s1", "s3", "s4"}, DefaultReplicas)
	moved, kept := 0, 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := before.sequence(key)[0]
		now := after.sequence(key)[0]
		if was == "s2" {
			moved++
			continue // its primary is gone; any new owner is correct
		}
		if was != now {
			t.Fatalf("key %s moved %s -> %s though its shard survives", key, was, now)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// The failover sequence for a key must equal the ring walk: dropping
// the primary from the fleet promotes exactly the next shard in the
// key's sequence.
func TestRingSuccessorTakesOver(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3"}
	full := newRing(ids, DefaultReplicas)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("object-%d", i)
		seq := full.sequence(key)
		rest := make([]string, 0, 3)
		for _, id := range ids {
			if id != seq[0] {
				rest = append(rest, id)
			}
		}
		without := newRing(rest, DefaultReplicas)
		if got := without.sequence(key)[0]; got != seq[1] {
			t.Fatalf("key %s: successor %s, want %s (seq %v)", key, got, seq[1], seq)
		}
	}
}
