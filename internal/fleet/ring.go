// Package fleet is a shard-aware routing layer in front of N pedald
// instances: the deployment where a fleet of DPU compression daemons
// fronts heavy multi-tenant traffic and no single wedged or crashed
// shard may take its clients down with it.
//
// The pieces, mirroring what a production DPU-offload service exposes:
//
//   - a consistent-hash ring (bounded-load variant) mapping tenant/key
//     onto a primary shard plus an ordered failover sequence,
//   - a resilience contract: idempotent requests fail over to the next
//     shard on peer death, and slow gold-class requests are hedged after
//     a latency-percentile delay with first-wins completion,
//   - per-tenant quotas and priority classes (gold / best-effort)
//     layered over the daemons' own MaxConcurrent/QueueDepth admission,
//     so overload sheds best-effort first — every shed typed and
//     carrying a Retry-After hint, never a hang,
//   - a fleet health plane polling each shard's ping/health endpoints
//     into a shared view that drives routing: wedged or degraded shards
//     are ejected, half-open probes readmit them, and graceful drain
//     migrates a shard's hash range before its daemon shuts down.
package fleet

import (
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per shard on the ring. More
// replicas smooth the range distribution; 64 keeps the worst shard
// within a few percent of the mean for small fleets.
const DefaultReplicas = 64

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash uint64
	id   string
}

// hashRing is an immutable consistent-hash ring over shard ids. The
// router rebuilds it on membership change (add/remove), not on health
// transitions, so a shard's hash ranges are stable across eject/readmit
// cycles and keys return to their primary when it recovers.
type hashRing struct {
	points []ringPoint // sorted by hash
	n      int         // distinct shard count
}

// newRing builds a ring with replicas virtual nodes per shard.
func newRing(ids []string, replicas int) *hashRing {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &hashRing{n: len(ids)}
	r.points = make([]ringPoint, 0, len(ids)*replicas)
	for _, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// sequence returns every shard id in ring-walk order from key's hash
// point: the primary first, then the distinct successors. Removing a
// shard from the ring hands exactly its ranges to the successors, which
// is what makes failover and drain migrate only the affected keys.
func (r *hashRing) sequence(key string) []string {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, r.n)
	for j := 0; j < len(r.points) && len(out) < r.n; j++ {
		id := r.points[(i+j)%len(r.points)].id
		if !containsID(out, id) {
			out = append(out, id)
		}
	}
	return out
}

func containsID(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// hash64 is FNV-1a with a murmur3-style avalanche finalizer, inlined so
// routing allocates nothing per lookup. Raw FNV clusters on the short,
// near-identical vnode labels ("s0#0", "s0#1", ...); the finalizer
// spreads them uniformly around the ring.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
