package fleet

import (
	"context"
	"errors"
	"time"

	"pedal/internal/service"
	"pedal/internal/stats"
)

// ShardInfo is one shard's entry in the fleet health view.
type ShardInfo struct {
	ID       string
	Addr     string
	State    string
	Inflight int
	// Engine is the engine fault-domain state the shard last reported
	// through its health endpoint ("live", "degraded", ...).
	Engine  string
	LastErr string
}

// View returns the current health view, sorted by shard id.
func (r *Router) View() []ShardInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardInfo, 0, len(r.order))
	for _, id := range r.order {
		s := r.shards[id]
		out = append(out, ShardInfo{
			ID:       s.ID,
			Addr:     s.Addr,
			State:    s.state.String(),
			Inflight: int(s.inflight.Load()),
			Engine:   s.engine,
			LastErr:  s.lastErr,
		})
	}
	return out
}

// Poll probes every non-draining shard once and applies the outcomes:
// live shards accumulate failure streaks toward ejection, ejected
// shards accumulate half-open successes toward readmission. Each probe
// is a fresh dial + ping + health exchange so it exercises the same
// path a new client would — a daemon that accepts connections but
// cannot answer (wedged executor, stalled admission) fails its probe.
func (r *Router) Poll() {
	r.mu.Lock()
	type target struct {
		s     *Shard
		state shardState
	}
	targets := make([]target, 0, len(r.order))
	for _, id := range r.order {
		s := r.shards[id]
		if s.state == stateLive || s.state == stateEjected {
			targets = append(targets, target{s, s.state})
		}
	}
	r.mu.Unlock()

	for _, t := range targets {
		h, err := r.probe(t.s)
		r.mu.Lock()
		if t.s.state != t.state {
			// State changed underneath the probe (data path ejected it,
			// or an operator drained it) — discard the stale result.
			r.mu.Unlock()
			continue
		}
		switch {
		case t.state == stateLive && err != nil:
			t.s.failStreak++
			t.s.lastErr = err.Error()
			if t.s.failStreak >= r.cfg.ejectAfter() {
				r.ejectLocked(t.s, err.Error())
			}
		case t.state == stateLive:
			t.s.failStreak = 0
			t.s.engine = h.State
		case err != nil: // ejected, still failing
			t.s.okProbes = 0
			t.s.lastErr = err.Error()
		default: // ejected, probe succeeded: half-open progress
			t.s.okProbes++
			t.s.engine = h.State
			if t.s.okProbes >= r.cfg.readmitAfter() {
				r.readmitLocked(t.s)
			}
		}
		r.mu.Unlock()
	}
}

// probe checks one shard over a fresh connection: ping proves the
// daemon answers its control channel, health proves a request can make
// it through admission and back. A busy answer counts as healthy —
// saturation is load shedding at work, not shard death.
func (r *Router) probe(s *Shard) (service.Health, error) {
	timeout := r.cfg.probeTimeout()
	be, err := r.cfg.Dial(s.Addr, timeout)
	if err != nil {
		return service.Health{}, err
	}
	defer be.Close()
	if err := be.Ping(); err != nil {
		return service.Health{}, err
	}
	h, err := be.Health()
	if err != nil {
		if errors.Is(err, service.ErrBusy) {
			return service.Health{}, nil
		}
		return service.Health{}, err
	}
	return h, nil
}

// Start launches the background poll loop at the given interval (zero
// means 100ms). Stop halts it; Close calls Stop.
func (r *Router) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	r.pollMu.Lock()
	defer r.pollMu.Unlock()
	if r.pollStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.pollStop, r.pollDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.Poll()
			}
		}
	}()
}

// Stop halts the background poll loop started by Start.
func (r *Router) Stop() {
	r.pollMu.Lock()
	stop, done := r.pollStop, r.pollDone
	r.pollStop, r.pollDone = nil, nil
	r.pollMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Drain gracefully removes a shard: it is immediately excluded from new
// routing decisions — the consistent-hash ring hands its ranges to the
// ring successors — and Drain then waits for its in-flight requests to
// finish (or ctx to expire) before reporting it fully drained. The
// caller shuts the daemon down only after Drain returns nil.
func (r *Router) Drain(ctx context.Context, id string) error {
	r.mu.Lock()
	s, ok := r.shards[id]
	if !ok {
		r.mu.Unlock()
		return errors.New("fleet: unknown shard " + id)
	}
	if s.state == stateDrained {
		r.mu.Unlock()
		return nil
	}
	if s.state != stateDraining {
		s.state = stateDraining
		r.traceLocked("drain", id, "")
	}
	r.mu.Unlock()

	// Every concurrent Drain caller waits for in-flight zero itself: a
	// second call arriving while another drain is underway must NOT
	// return early, or its caller would kill the daemon with requests
	// still on the wire. Whoever observes the barrier first performs the
	// drained transition; the state check keeps it single-shot.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	r.mu.Lock()
	first := s.state == stateDraining
	if first {
		s.state = stateDrained
	}
	r.mu.Unlock()
	if first {
		r.bd.Inc(stats.CounterShardDrains)
		r.trace("drained", id, "")
		s.recycle()
	}
	return nil
}
