package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/stats"
)

func TestHealthEjectAndReadmit(t *testing.T) {
	r, f := newTestFleet(2, Config{EjectAfter: 3, ReadmitAfter: 2})
	defer r.Close()
	f.shard("s0").set(func(s *fakeShard) { s.down = true })

	for i := 0; i < 3; i++ {
		r.Poll()
	}
	if st := stateOf(r, "s0"); st != "ejected" {
		t.Fatalf("s0 state %q after 3 failed probes, want ejected", st)
	}
	if r.Stats().Count(stats.CounterShardEjects) != 1 {
		t.Fatalf("eject counter = %d, want 1", r.Stats().Count(stats.CounterShardEjects))
	}
	// An ejected shard takes no traffic: every key routes to s1.
	for i := 0; i < 20; i++ {
		body, err := r.Compress(goldReq("key-"+string(rune('a'+i))), testDesign, core.TypeBytes, []byte("d"))
		if err != nil {
			t.Fatalf("request failed with one shard ejected: %v", err)
		}
		if string(body[:3]) != "s1:" {
			t.Fatalf("ejected shard served a request: %q", body)
		}
	}

	// Recovery: half-open probes must succeed ReadmitAfter times.
	f.shard("s0").set(func(s *fakeShard) { s.down = false })
	r.Poll()
	if st := stateOf(r, "s0"); st != "ejected" {
		t.Fatalf("readmitted after a single probe, want 2 (state %q)", st)
	}
	r.Poll()
	if st := stateOf(r, "s0"); st != "live" {
		t.Fatalf("s0 state %q after recovery probes, want live", st)
	}
	if r.Stats().Count(stats.CounterShardReadmits) != 1 {
		t.Fatalf("readmit counter = %d, want 1", r.Stats().Count(stats.CounterShardReadmits))
	}
}

func TestHealthDataPathEjects(t *testing.T) {
	// Ejection must also trigger from request failures alone, without
	// any poll running: three broken exchanges take the shard out.
	r, f := newTestFleet(3, Config{EjectAfter: 3, FailoverAttempts: -1})
	defer r.Close()
	key := "object-1"
	primary := r.Primary(key)
	f.shard(primary).set(func(s *fakeShard) { s.fail = true })
	for i := 0; i < 3; i++ {
		req := Request{Key: key} // not idempotent: no failover, error surfaces
		r.Compress(req, testDesign, core.TypeBytes, []byte("d"))
	}
	if st := stateOf(r, primary); st != "ejected" {
		t.Fatalf("primary state %q after 3 data-path failures, want ejected", st)
	}
	if r.Primary(key) == primary {
		t.Fatal("ejected shard still primary")
	}
}

func TestHealthDegradedEject(t *testing.T) {
	r, f := newTestFleet(3, Config{EjectAfter: 2, DegradeAfter: time.Millisecond, FailoverAttempts: -1})
	defer r.Close()
	key := "object-3"
	primary := r.Primary(key)
	f.shard(primary).set(func(s *fakeShard) { s.delay = 5 * time.Millisecond })
	for i := 0; i < 2; i++ {
		if _, err := r.Compress(Request{Key: key}, testDesign, core.TypeBytes, []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	if st := stateOf(r, primary); st != "ejected" {
		t.Fatalf("slow shard state %q, want ejected (degraded)", st)
	}
}

func TestDrainMigratesRange(t *testing.T) {
	r, f := newTestFleet(3, Config{})
	defer r.Close()
	key := "object-8"
	primary := r.Primary(key)

	// A request in flight on the draining shard: Drain must wait it out.
	f.shard(primary).set(func(s *fakeShard) { s.delay = 20 * time.Millisecond })
	done := make(chan error, 1)
	go func() {
		_, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("slow"))
		done <- err
	}()
	for r.shardByID(primary).inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := r.Drain(ctx, primary); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if st := stateOf(r, primary); st != "drained" {
		t.Fatalf("state %q after drain, want drained", st)
	}
	if got := r.Primary(key); got == primary || got == "" {
		t.Fatalf("hash range did not migrate: primary still %q", got)
	}
	if r.Stats().Count(stats.CounterShardDrains) != 1 {
		t.Fatalf("drain counter = %d, want 1", r.Stats().Count(stats.CounterShardDrains))
	}
	// Traffic continues on the survivors.
	if _, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("d")); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

func TestConcurrentDrainsAllWaitForInflight(t *testing.T) {
	// Two Drain calls racing on the same shard: BOTH must block until
	// the in-flight request finishes. The old behaviour let the second
	// caller return nil immediately (state already draining) — its
	// caller would then kill the daemon with a request on the wire.
	r, f := newTestFleet(3, Config{})
	defer r.Close()
	key := "object-9"
	primary := r.Primary(key)
	f.shard(primary).set(func(s *fakeShard) { s.delay = 30 * time.Millisecond })
	reqDone := make(chan error, 1)
	go func() {
		_, err := r.Compress(goldReq(key), testDesign, core.TypeBytes, []byte("slow"))
		reqDone <- err
	}()
	sh := r.shardByID(primary)
	for sh.inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const drainers = 4
	leaks := make(chan int64, drainers)
	var wg sync.WaitGroup
	for i := 0; i < drainers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Drain(ctx, primary); err != nil {
				leaks <- -1
				return
			}
			// The shutdown-safety contract: when Drain returns nil the
			// caller may kill the daemon, so nothing may be in flight.
			leaks <- sh.inflight.Load()
		}()
	}
	wg.Wait()
	close(leaks)
	for n := range leaks {
		if n != 0 {
			t.Fatalf("a Drain returned with inflight=%d (want 0 for every caller)", n)
		}
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if got := r.Stats().Count(stats.CounterShardDrains); got != 1 {
		t.Fatalf("drain counter = %d, want 1 (single-shot transition)", got)
	}
}

func TestDrainVsHalfOpenReadmit(t *testing.T) {
	// The race from the fleet PR's review notes: an ejected shard is
	// accumulating half-open probe successes toward readmission while an
	// operator drains it. Whatever the interleaving, the shard must end
	// drained — a stale probe result must never resurrect it.
	for iter := 0; iter < 25; iter++ {
		r, f := newTestFleet(2, Config{EjectAfter: 1, ReadmitAfter: 1})
		f.shard("s0").set(func(s *fakeShard) { s.down = true })
		r.Poll()
		if st := stateOf(r, "s0"); st != "ejected" {
			t.Fatalf("setup: s0 state %q, want ejected", st)
		}
		f.shard("s0").set(func(s *fakeShard) { s.down = false })

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // half-open probes racing toward readmission
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r.Poll()
			}
		}()
		go func() {
			defer wg.Done()
			if err := r.Drain(ctx, "s0"); err != nil {
				t.Errorf("iter %d: drain: %v", iter, err)
			}
		}()
		wg.Wait()
		cancel()
		if st := stateOf(r, "s0"); st != "drained" {
			t.Fatalf("iter %d: s0 state %q after drain vs readmit race, want drained", iter, st)
		}
		r.Close()
	}
}

func TestViewReportsFleet(t *testing.T) {
	r, f := newTestFleet(2, Config{EjectAfter: 1})
	defer r.Close()
	f.shard("s1").set(func(s *fakeShard) { s.down = true })
	r.Poll()
	view := r.View()
	if len(view) != 2 {
		t.Fatalf("view has %d shards, want 2", len(view))
	}
	if view[0].ID != "s0" || view[0].State != "live" {
		t.Fatalf("s0 entry wrong: %+v", view[0])
	}
	if view[1].ID != "s1" || view[1].State != "ejected" || view[1].LastErr == "" {
		t.Fatalf("s1 entry wrong: %+v", view[1])
	}
}

func stateOf(r *Router, id string) string {
	for _, info := range r.View() {
		if info.ID == id {
			return info.State
		}
	}
	return ""
}
