package fleet

import (
	"sort"
	"sync"
	"time"
)

// latWindow is a fixed-size ring of recent successful request latencies
// feeding the hedge-delay quantile estimate. Hedging wants "recent
// typical latency", not all-time history, so old samples age out.
type latWindow struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	count int
}

const defaultLatWindow = 512

func newLatWindow(size int) *latWindow {
	if size <= 0 {
		size = defaultLatWindow
	}
	return &latWindow{buf: make([]time.Duration, size)}
}

func (w *latWindow) add(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.mu.Unlock()
}

func (w *latWindow) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// quantile returns the q-th latency quantile (q in (0,1]) over the
// window, or 0 when empty. Copies and sorts; the window is small and
// this runs at most once per hedged request.
func (w *latWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.count
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[n-1]
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return tmp[i]
}
