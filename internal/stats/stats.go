// Package stats accumulates per-phase virtual-time breakdowns. The
// paper's Figures 7 and 9 report execution time split into four
// fractions — DOCA initialisation, buffer preparation, compression, and
// decompression — and this package is the accounting backbone for
// regenerating them.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase labels one segment of a compression run.
type Phase string

// The four fractions of Figs. 7 and 9, plus auxiliary phases used by the
// MPI co-design experiments.
const (
	PhaseDOCAInit   Phase = "doca_init"
	PhaseBufPrep    Phase = "buffer_prep"
	PhaseCompress   Phase = "compression"
	PhaseDecompress Phase = "decompression"
	PhaseWire       Phase = "wire"
	PhaseOther      Phase = "other"
)

// Breakdown is a concurrency-safe accumulator of virtual durations per
// phase.
type Breakdown struct {
	mu sync.Mutex
	m  map[Phase]time.Duration
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{m: make(map[Phase]time.Duration)}
}

// Add accumulates d into phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.m[p] += d
	b.mu.Unlock()
}

// Get returns the accumulated duration for phase p.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m[p]
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.m {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total, in [0, 1].
func (b *Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Get(p)) / float64(t)
}

// Reset clears all phases.
func (b *Breakdown) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.m = make(map[Phase]time.Duration)
	b.mu.Unlock()
}

// Snapshot returns a copy of the phase map.
func (b *Breakdown) Snapshot() map[Phase]time.Duration {
	out := make(map[Phase]time.Duration)
	if b == nil {
		return out
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for p, d := range b.m {
		out[p] = d
	}
	return out
}

// Merge adds every phase of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	if b == nil || other == nil {
		return
	}
	for p, d := range other.Snapshot() {
		b.Add(p, d)
	}
}

// String formats the breakdown as "phase=dur(frac%)" pairs sorted by
// phase name, for log and table output.
func (b *Breakdown) String() string {
	snap := b.Snapshot()
	phases := make([]string, 0, len(snap))
	for p := range snap {
		phases = append(phases, string(p))
	}
	sort.Strings(phases)
	total := b.Total()
	var sb strings.Builder
	for i, p := range phases {
		if i > 0 {
			sb.WriteString(" ")
		}
		d := snap[Phase(p)]
		frac := 0.0
		if total > 0 {
			frac = float64(d) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "%s=%v(%.1f%%)", p, d.Round(time.Microsecond), frac)
	}
	return sb.String()
}
