// Package stats accumulates per-phase virtual-time breakdowns. The
// paper's Figures 7 and 9 report execution time split into four
// fractions — DOCA initialisation, buffer preparation, compression, and
// decompression — and this package is the accounting backbone for
// regenerating them.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase labels one segment of a compression run.
type Phase string

// The four fractions of Figs. 7 and 9, plus auxiliary phases used by the
// MPI co-design experiments.
const (
	PhaseDOCAInit   Phase = "doca_init"
	PhaseBufPrep    Phase = "buffer_prep"
	PhaseCompress   Phase = "compression"
	PhaseDecompress Phase = "decompression"
	PhaseWire       Phase = "wire"
	PhaseOther      Phase = "other"
	// PhaseRetry accumulates the virtual backoff delays spent retrying
	// transient C-Engine failures.
	PhaseRetry Phase = "retry_backoff"
	// PhaseReset accumulates the virtual cost of engine hot-resets
	// (work-queue teardown + rebuild after a wedge).
	PhaseReset Phase = "engine_reset"
	// PhaseHedgeWait accumulates the latency-percentile delays the fleet
	// router waited before launching hedge requests: the price of tail
	// tolerance, charged as virtual time like retry backoff.
	PhaseHedgeWait Phase = "hedge_wait"
)

// Counter names a monotonically increasing resilience event count.
// Unlike phases (virtual time), counters tally *how often* the fault
// handling machinery fired, so experiments can report availability under
// injected faults.
type Counter string

// Resilience counters.
const (
	// CounterRetries counts transient-failure resubmissions.
	CounterRetries Counter = "retries"
	// CounterTimeouts counts jobs that missed their completion deadline.
	CounterTimeouts Counter = "timeouts"
	// CounterCorruptions counts engine outputs rejected by checksum
	// verification.
	CounterCorruptions Counter = "corruption_detected"
	// CounterEngineFailures counts hard C-Engine failures (after retry
	// exhaustion) seen by the fallback layer.
	CounterEngineFailures Counter = "engine_failures"
	// CounterBreakerTrips and CounterBreakerRecoveries count circuit
	// breaker open/close transitions.
	CounterBreakerTrips      Counter = "breaker_trips"
	CounterBreakerRecoveries Counter = "breaker_recoveries"
	// CounterDegradedOps counts operations routed straight to the SoC
	// because the breaker was open.
	CounterDegradedOps Counter = "degraded_ops"
)

// Engine fault-domain counters (PR 4): the stall watchdog, hot-reset
// state machine, and journal replay in internal/dpu and internal/core.
const (
	// CounterEngineStalls counts jobs the watchdog failed as overdue
	// (submit timestamp exceeded the expected-latency budget).
	CounterEngineStalls Counter = "engine_stall_detected"
	// CounterEngineWedges counts whole-engine wedge declarations (K
	// consecutive stalls; every in-flight job failed with ErrEngineLost).
	CounterEngineWedges Counter = "engine_wedges"
	// CounterEngineResets counts successful hot-resets (engine back to
	// live); CounterEngineResetFailures counts failed reset attempts.
	CounterEngineResets        Counter = "engine_reset"
	CounterEngineResetFailures Counter = "engine_reset_failures"
	// CounterEngineDegraded counts escalations to permanent SoC-only
	// degradation after reset attempts were exhausted.
	CounterEngineDegraded Counter = "engine_degraded_permanent"
	// CounterJobsReplayed counts operations that lost their engine job to
	// a stall/wedge and were deterministically re-executed on the SoC
	// path from the in-flight journal.
	CounterJobsReplayed Counter = "jobs_replayed"
	// CounterJobsExpiredDropped counts queued jobs dropped at dequeue
	// because their completion deadline had already passed.
	CounterJobsExpiredDropped Counter = "jobs_dropped_expired"
)

// Network reliability counters (internal/transport's faulty wrapper and
// reliability sublayer). The net_injected_* counters tally faults the
// seeded injector put on the wire; the remaining counters tally what the
// reliability machinery detected and repaired on the receive side.
const (
	CounterNetInjDrops    Counter = "net_injected_drops"
	CounterNetInjDups     Counter = "net_injected_dups"
	CounterNetInjReorders Counter = "net_injected_reorders"
	CounterNetInjCorrupts Counter = "net_injected_corrupts"
	CounterNetInjDelays   Counter = "net_injected_delays"
	// CounterRetransmits counts frames re-sent by the reliability
	// sublayer (RTO expiry or NACK-triggered fast retransmit).
	CounterRetransmits Counter = "retransmits"
	// CounterNetCorrupt counts frames rejected by CRC verification.
	CounterNetCorrupt Counter = "net_corrupt_detected"
	// CounterNetDuplicates counts already-delivered frames discarded by
	// sequence-number deduplication.
	CounterNetDuplicates Counter = "net_duplicates_dropped"
	// CounterNetReorders counts out-of-order frames buffered and later
	// delivered in sequence.
	CounterNetReorders Counter = "net_reorders_healed"
	// CounterNetNacks counts NACK control frames sent to request a
	// retransmission (gap or CRC failure observed).
	CounterNetNacks Counter = "net_nacks_sent"
)

// Process fault-domain counters (PR 5): the heartbeat failure detector,
// ULFM-style communicator shrink, and epoch-stamped frame filtering in
// internal/mpi.
const (
	// CounterHeartbeats counts heartbeats the detector accepted from
	// this rank.
	CounterHeartbeats Counter = "heartbeats_sent"
	// CounterRankDeaths counts ranks the detector declared failed
	// (heartbeat staleness exceeded the suspicion timeout).
	CounterRankDeaths Counter = "rank_deaths_declared"
	// CounterFencedBeats counts heartbeats ignored because they came
	// from a rank already declared dead (zombie fencing: a restarted or
	// unhung process never rejoins the old world).
	CounterFencedBeats Counter = "fenced_heartbeats_dropped"
	// CounterRevocations counts operations aborted with a rank-failure
	// error instead of blocking on a dead peer.
	CounterRevocations Counter = "ops_revoked"
	// CounterShrinks counts successful World.Shrink agreements installed
	// by this rank (each installs a new dense group and epoch).
	CounterShrinks Counter = "comm_shrinks"
	// CounterStaleFrames counts frames dropped by the epoch filter:
	// leftovers of an operation interrupted by a failure, or traffic
	// from fenced ranks. Dropping them is what makes post-shrink re-runs
	// idempotent.
	CounterStaleFrames Counter = "stale_frames_dropped"
	// CounterShrinkJoinResends counts join re-transmissions during the
	// shrink agreement (coordinator change or lost first join).
	CounterShrinkJoinResends Counter = "shrink_join_resends"
)

// Service admission-control counters (internal/service).
const (
	// CounterRequests counts requests the server answered (any status).
	CounterRequests Counter = "requests_served"
	// CounterSheds counts requests refused with a busy status because
	// both the handler semaphore and the wait queue were full.
	CounterSheds Counter = "requests_shed"
	// CounterPanics counts handler panics converted into error
	// responses instead of daemon crashes.
	CounterPanics Counter = "panics_recovered"
	// CounterDrained counts requests completed while the server was
	// draining towards shutdown.
	CounterDrained Counter = "drained_requests"
)

// Fleet fault-domain counters (internal/fleet): the shard router's
// shedding, failover, hedging and health-plane machinery.
const (
	// CounterFleetSheds counts best-effort requests the router refused
	// because the primary shard was saturated (priority load shedding).
	CounterFleetSheds Counter = "fleet_sheds"
	// CounterQuotaSheds counts requests refused because the tenant was
	// over its in-flight quota.
	CounterQuotaSheds Counter = "fleet_quota_sheds"
	// CounterFailovers counts attempts re-routed to a failover shard
	// after a peer-class failure on the previous one.
	CounterFailovers Counter = "fleet_failovers"
	// CounterHedges counts hedge requests launched after the latency
	// trigger fired; CounterHedgeWins counts the hedges that finished
	// before the primary attempt.
	CounterHedges    Counter = "fleet_hedges"
	CounterHedgeWins Counter = "fleet_hedge_wins"
	// CounterShardEjects and CounterShardReadmits count shard health
	// transitions out of and back into the routing set.
	CounterShardEjects   Counter = "shards_ejected"
	CounterShardReadmits Counter = "shards_readmitted"
	// CounterShardDrains counts shards gracefully drained: hash range
	// migrated, in-flight requests completed, daemon safe to stop.
	CounterShardDrains Counter = "shards_drained"
)

// Storage fault-domain counters (internal/ckpt): the checkpoint store's
// commit protocol, digest verification and scrub-and-repair machinery.
const (
	// CounterCkptCommits counts checkpoints made durable (manifest
	// atomically renamed into place).
	CounterCkptCommits Counter = "ckpt_commits"
	// CounterCkptRestores counts restarts that recovered a fully
	// digest-verified checkpoint.
	CounterCkptRestores Counter = "ckpt_restores"
	// CounterCkptTornManifests counts manifests rejected by magic/CRC
	// validation (torn write or rot in the metadata itself).
	CounterCkptTornManifests Counter = "ckpt_torn_manifests"
	// CounterCkptRotDetected counts shard copies that failed digest
	// verification (torn writes and silent bit rot both land here).
	CounterCkptRotDetected Counter = "ckpt_rot_detected"
	// CounterCkptRepairs counts shard copies rewritten from a surviving
	// replica or re-compressed from source (read-repair and scrub).
	CounterCkptRepairs Counter = "ckpt_shard_repairs"
	// CounterCkptCondemned counts epochs declared unrecoverable and
	// retired from the restore sequence.
	CounterCkptCondemned Counter = "ckpt_epochs_condemned"
)

// Compute fault-domain counters (internal/integrity): verified
// compression, hop-carried checksum rejection and the silent-data-
// corruption quarantine ladder.
const (
	// CounterVerifyMismatches counts compressed outputs that failed
	// decode-verification against the source digest (or the scalar-vs-
	// slab differential referee) before release.
	CounterVerifyMismatches Counter = "verify_mismatches"
	// CounterHopsRejected counts payloads rejected at a hop boundary
	// (pipeline reassembly, fleet response, checkpoint write-back)
	// because the hop-carried CRC no longer matched the bytes.
	CounterHopsRejected Counter = "hops_rejected"
	// CounterCoresQuarantined counts compute units (C-Engine complexes)
	// pulled from service after repeated verified mismatches.
	CounterCoresQuarantined Counter = "cores_quarantined"
	// CounterScalarFallbacks counts operations transparently re-executed
	// on the scalar reference path after a verification failure.
	CounterScalarFallbacks Counter = "scalar_fallbacks"
)

// Overload fault-domain counters (mempool budgets, deadline
// propagation, cooperative backpressure): the machinery that makes the
// system degrade under pressure instead of OOMing or working past the
// point anyone still wants the answer.
const (
	// CounterDeadlineAbandoned counts operations abandoned at a deadline
	// checkpoint with a typed ErrDeadline: the caller's budget ran out,
	// so the layer released its pooled buffers and stopped instead of
	// finishing work nobody is waiting for. Every layer (core, pipeline,
	// service, fleet) feeds the same counter.
	CounterDeadlineAbandoned Counter = "deadline_abandoned"
	// CounterMemPressure counts typed ErrMemPressure refusals: a
	// governed pool draw that would have exceeded the byte budget.
	CounterMemPressure Counter = "mem_pressure_rejects"
	// CounterMemPressureWaits counts governed pool draws that had to
	// block for budget before succeeding — the early-warning signal that
	// the budget is sized at the knee.
	CounterMemPressureWaits Counter = "mem_pressure_waits"
	// CounterBrownouts counts brownout-ladder escalations: the service
	// observed sustained pool pressure or queue depth and stepped down a
	// rung (shed low-priority, shrink pipeline concurrency, serial
	// fallback).
	CounterBrownouts Counter = "brownout_steps"
)

// Breakdown is a concurrency-safe accumulator of virtual durations per
// phase plus resilience event counters.
type Breakdown struct {
	mu sync.Mutex
	m  map[Phase]time.Duration
	c  map[Counter]uint64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{m: make(map[Phase]time.Duration), c: make(map[Counter]uint64)}
}

// Add accumulates d into phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.m[p] += d
	b.mu.Unlock()
}

// Get returns the accumulated duration for phase p.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m[p]
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.m {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total, in [0, 1].
func (b *Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Get(p)) / float64(t)
}

// Inc adds one to counter k.
func (b *Breakdown) Inc(k Counter) { b.CountAdd(k, 1) }

// CountAdd adds n to counter k.
func (b *Breakdown) CountAdd(k Counter, n uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.c[k] += n
	b.mu.Unlock()
}

// Count returns the accumulated value of counter k.
func (b *Breakdown) Count(k Counter) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c[k]
}

// Counts returns a copy of the counter map.
func (b *Breakdown) Counts() map[Counter]uint64 {
	out := make(map[Counter]uint64)
	if b == nil {
		return out
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, v := range b.c {
		out[k] = v
	}
	return out
}

// Reset clears all phases and counters.
func (b *Breakdown) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.m = make(map[Phase]time.Duration)
	b.c = make(map[Counter]uint64)
	b.mu.Unlock()
}

// Snapshot returns a copy of the phase map.
func (b *Breakdown) Snapshot() map[Phase]time.Duration {
	out := make(map[Phase]time.Duration)
	if b == nil {
		return out
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for p, d := range b.m {
		out[p] = d
	}
	return out
}

// Merge adds every phase and counter of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	if b == nil || other == nil {
		return
	}
	for p, d := range other.Snapshot() {
		b.Add(p, d)
	}
	for k, n := range other.Counts() {
		b.CountAdd(k, n)
	}
}

// String formats the breakdown as "phase=dur(frac%)" pairs sorted by
// phase name, followed by non-zero counters, for log and table output.
func (b *Breakdown) String() string {
	snap := b.Snapshot()
	phases := make([]string, 0, len(snap))
	for p := range snap {
		phases = append(phases, string(p))
	}
	sort.Strings(phases)
	total := b.Total()
	var sb strings.Builder
	for i, p := range phases {
		if i > 0 {
			sb.WriteString(" ")
		}
		d := snap[Phase(p)]
		frac := 0.0
		if total > 0 {
			frac = float64(d) / float64(total) * 100
		}
		fmt.Fprintf(&sb, "%s=%v(%.1f%%)", p, d.Round(time.Microsecond), frac)
	}
	counts := b.Counts()
	keys := make([]string, 0, len(counts))
	for k, v := range counts {
		if v > 0 {
			keys = append(keys, string(k))
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if sb.Len() > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%d", k, counts[Counter(k)])
	}
	return sb.String()
}
