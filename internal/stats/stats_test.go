package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddGetTotal(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseDOCAInit, 150*time.Millisecond)
	b.Add(PhaseCompress, 30*time.Millisecond)
	b.Add(PhaseCompress, 20*time.Millisecond)
	if b.Get(PhaseCompress) != 50*time.Millisecond {
		t.Fatalf("compress = %v", b.Get(PhaseCompress))
	}
	if b.Total() != 200*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestFraction(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseDOCAInit, 94*time.Millisecond)
	b.Add(PhaseCompress, 6*time.Millisecond)
	if f := b.Fraction(PhaseDOCAInit); f < 0.93 || f > 0.95 {
		t.Fatalf("fraction = %v", f)
	}
	if NewBreakdown().Fraction(PhaseCompress) != 0 {
		t.Fatal("empty breakdown fraction should be 0")
	}
}

func TestReset(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseWire, time.Second)
	b.Reset()
	if b.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMerge(t *testing.T) {
	a := NewBreakdown()
	a.Add(PhaseCompress, time.Millisecond)
	b := NewBreakdown()
	b.Add(PhaseCompress, time.Millisecond)
	b.Add(PhaseWire, 2*time.Millisecond)
	a.Merge(b)
	if a.Get(PhaseCompress) != 2*time.Millisecond || a.Get(PhaseWire) != 2*time.Millisecond {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestNilSafe(t *testing.T) {
	var b *Breakdown
	b.Add(PhaseCompress, time.Second) // must not panic
	if b.Get(PhaseCompress) != 0 || b.Total() != 0 {
		t.Fatal("nil breakdown should read zero")
	}
	b.Reset()
	b.Merge(NewBreakdown())
}

func TestStringFormat(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseDOCAInit, 90*time.Millisecond)
	b.Add(PhaseCompress, 10*time.Millisecond)
	s := b.String()
	if !strings.Contains(s, "doca_init") || !strings.Contains(s, "90.0%") {
		t.Fatalf("unexpected format: %s", s)
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Add(PhaseCompress, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if b.Get(PhaseCompress) != 8*1000*time.Microsecond {
		t.Fatalf("lost updates: %v", b.Get(PhaseCompress))
	}
}
