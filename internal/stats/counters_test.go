package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	b := NewBreakdown()
	if got := b.Count(CounterRetries); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
	b.Inc(CounterRetries)
	b.Inc(CounterRetries)
	b.CountAdd(CounterTimeouts, 3)
	if b.Count(CounterRetries) != 2 || b.Count(CounterTimeouts) != 3 {
		t.Fatalf("counts = %v", b.Counts())
	}
	snap := b.Counts()
	snap[CounterRetries] = 99
	if b.Count(CounterRetries) != 2 {
		t.Fatal("Counts did not return a copy")
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Inc(CounterBreakerTrips)
	b.Inc(CounterBreakerTrips)
	b.CountAdd(CounterDegradedOps, 5)
	b.Add(PhaseRetry, time.Millisecond)
	a.Merge(b)
	if a.Count(CounterBreakerTrips) != 2 {
		t.Fatalf("merged trips = %d", a.Count(CounterBreakerTrips))
	}
	if a.Count(CounterDegradedOps) != 5 {
		t.Fatalf("merged degraded = %d", a.Count(CounterDegradedOps))
	}
	if a.Get(PhaseRetry) != time.Millisecond {
		t.Fatal("merge lost phase time")
	}
}

func TestCountersReset(t *testing.T) {
	b := NewBreakdown()
	b.Inc(CounterCorruptions)
	b.Add(PhaseCompress, time.Second)
	b.Reset()
	if b.Count(CounterCorruptions) != 0 || b.Get(PhaseCompress) != 0 {
		t.Fatal("reset did not clear counters and phases")
	}
}

func TestStringIncludesNonZeroCounters(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseCompress, time.Millisecond)
	b.Inc(CounterRetries)
	s := b.String()
	if !strings.Contains(s, "retries=1") {
		t.Fatalf("String() missing counter: %q", s)
	}
	if strings.Contains(s, string(CounterTimeouts)) {
		t.Fatalf("String() shows zero counter: %q", s)
	}
}

func TestNilBreakdownCounters(t *testing.T) {
	var b *Breakdown
	b.Inc(CounterRetries) // must not panic
	if b.Count(CounterRetries) != 0 {
		t.Fatal("nil breakdown count")
	}
	if len(b.Counts()) != 0 {
		t.Fatal("nil breakdown counts map")
	}
}
