// Package bits provides LSB-first bit-stream readers and writers as used by
// the DEFLATE format (RFC 1951) and by the SZ3 entropy stage.
//
// DEFLATE packs bits starting from the least-significant bit of each byte.
// Huffman codes are written most-significant-bit first *within the code*,
// which callers achieve by reversing the code bits before calling WriteBits.
package bits

// Writer accumulates bits LSB-first into a growing byte slice.
//
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	bits uint64 // pending bits, LSB-first
	n    uint   // number of valid pending bits (< 64)
}

// NewWriter returns a Writer whose output buffer has the given capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBits appends the low n bits of v to the stream, LSB-first.
// n must be in [0, 32].
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic("bits: WriteBits count > 32")
	}
	w.bits |= uint64(v&masks[n]) << w.n
	w.n += n
	for w.n >= 8 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits >>= 8
		w.n -= 8
	}
}

// WriteBool writes a single bit.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// AlignByte pads the stream with zero bits up to the next byte boundary.
func (w *Writer) AlignByte() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits = 0
		w.n = 0
	}
}

// WriteBytes byte-aligns the stream and appends p verbatim.
func (w *Writer) WriteBytes(p []byte) {
	w.AlignByte()
	w.buf = append(w.buf, p...)
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() int {
	return len(w.buf)*8 + int(w.n)
}

// Bytes flushes any partial byte (zero-padded) and returns the accumulated
// buffer. The Writer remains usable; further writes append after the
// flushed byte boundary.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset discards all written data, retaining the underlying buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.bits = 0
	w.n = 0
}

// ResetBuf makes the writer append into a caller-provided buffer (bits
// land after dst's current length). Writers owned by a reusable scratch
// use this to emit directly into pooled output buffers: when dst has
// enough capacity for the stream, no allocation happens at all. Call
// ResetBuf(nil) afterwards so the scratch does not retain the caller's
// buffer.
func (w *Writer) ResetBuf(dst []byte) {
	w.buf = dst
	w.bits = 0
	w.n = 0
}

var masks = func() [33]uint32 {
	var m [33]uint32
	for i := 1; i <= 32; i++ {
		m[i] = m[i-1]<<1 | 1
	}
	return m
}()

// Reverse returns the low n bits of v in reversed order. DEFLATE Huffman
// codes are emitted MSB-first, so canonical codes must be bit-reversed
// before being written with an LSB-first writer.
func Reverse(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}
