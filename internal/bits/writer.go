// Package bits provides LSB-first bit-stream readers and writers as used by
// the DEFLATE format (RFC 1951) and by the SZ3 entropy stage.
//
// DEFLATE packs bits starting from the least-significant bit of each byte.
// Huffman codes are written most-significant-bit first *within the code*,
// which callers achieve by reversing the code bits before calling WriteBits.
package bits

import (
	"encoding/binary"
	mathbits "math/bits"
)

// Writer accumulates bits LSB-first into a growing byte slice.
//
// The zero value is ready to use. Complete bytes are flushed from the
// 64-bit accumulator with a single 8-byte store (then truncated to the
// exact byte count), so a WriteBits64 carrying several packed Huffman
// codes costs one store rather than a byte-at-a-time loop.
type Writer struct {
	buf  []byte
	bits uint64 // pending bits, LSB-first
	n    uint   // number of valid pending bits (< 8 between calls)
}

// NewWriter returns a Writer whose output buffer has the given capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// flushBytes appends all complete pending bytes with one word-wide store.
// The accumulator keeps fewer than 8 bits afterwards.
func (w *Writer) flushBytes() {
	k := int(w.n >> 3)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(w.buf[len(w.buf)-8:], w.bits)
	w.buf = w.buf[:len(w.buf)-8+k]
	w.bits >>= uint(k) << 3
	w.n &= 7
}

// WriteBits appends the low n bits of v to the stream, LSB-first.
// n must be in [0, 32].
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic("bits: WriteBits count > 32")
	}
	w.bits |= uint64(v&masks[n]) << w.n
	w.n += n
	if w.n >= 8 {
		w.flushBytes()
	}
}

// WriteBits64 appends the low n bits of v (n ≤ 56), LSB-first. Callers
// pack several consecutive codes (plus their extra bits) into one value
// so a whole match token — or a run of literals — lands with a single
// accumulator merge and at most one 8-byte store.
func (w *Writer) WriteBits64(v uint64, n uint) {
	if n > 56 {
		panic("bits: WriteBits64 count > 56")
	}
	w.bits |= (v & (1<<n - 1)) << w.n
	w.n += n
	if w.n >= 8 {
		w.flushBytes()
	}
}

// WriteBool writes a single bit.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// AlignByte pads the stream with zero bits up to the next byte boundary.
func (w *Writer) AlignByte() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits))
		w.bits = 0
		w.n = 0
	}
}

// WriteBytes byte-aligns the stream and appends p verbatim.
func (w *Writer) WriteBytes(p []byte) {
	w.AlignByte()
	w.buf = append(w.buf, p...)
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() int {
	return len(w.buf)*8 + int(w.n)
}

// Bytes flushes any partial byte (zero-padded) and returns the accumulated
// buffer. The Writer remains usable; further writes append after the
// flushed byte boundary.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// Reset discards all written data, retaining the underlying buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.bits = 0
	w.n = 0
}

// ResetBuf makes the writer append into a caller-provided buffer (bits
// land after dst's current length). Writers owned by a reusable scratch
// use this to emit directly into pooled output buffers: when dst has
// enough capacity for the stream, no allocation happens at all. Call
// ResetBuf(nil) afterwards so the scratch does not retain the caller's
// buffer.
func (w *Writer) ResetBuf(dst []byte) {
	w.buf = dst
	w.bits = 0
	w.n = 0
}

var masks = func() [33]uint32 {
	var m [33]uint32
	for i := 1; i <= 32; i++ {
		m[i] = m[i-1]<<1 | 1
	}
	return m
}()

// Reverse returns the low n bits of v in reversed order. DEFLATE Huffman
// codes are emitted MSB-first, so canonical codes must be bit-reversed
// before being written with an LSB-first writer. Compiles to a handful of
// instructions (RBIT on arm64) instead of an n-iteration loop.
func Reverse(v uint32, n uint) uint32 {
	if n == 0 {
		return 0
	}
	return mathbits.Reverse32(v) >> (32 - n)
}
