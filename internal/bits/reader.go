package bits

import (
	"encoding/binary"
	"errors"
	"io"
)

// ErrUnexpectedEOF is returned when the bit stream ends mid-read.
var ErrUnexpectedEOF = errors.New("bits: unexpected end of stream")

// Reader consumes bits LSB-first from a byte slice.
//
// The reservoir is 64 bits wide and refilled with a single unaligned
// 8-byte load whenever at least 8 source bytes remain, so a run of
// table-driven Huffman decodes pays one bounds check per ~7 consumed
// bytes instead of one per byte. The scalar byte-at-a-time path only
// runs inside the final 8 bytes of the stream.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	bits uint64 // buffered bits, LSB-first
	n    uint   // number of valid buffered bits (≤ 64)
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// fill buffers at least want bits if available. want must be ≤ 32.
//
// The reservoir invariant is speculative: bits 0..n-1 are the next n
// stream bits, and bits n..63 are either zero or the *correct
// continuation* (the stream bits of the not-yet-credited bytes at pos).
// The word-wide refill exploits that: it ORs a full 8-byte load at
// position n, credits only the whole bytes that fit (n becomes 56..63),
// and leaves the partially-loaded byte's bits sitting above n, where the
// next refill ORs the identical values back in.
func (r *Reader) fill(want uint) {
	if r.n >= want {
		return
	}
	if r.pos+8 <= len(r.buf) {
		r.bits |= binary.LittleEndian.Uint64(r.buf[r.pos:]) << (r.n & 63)
		r.pos += int((63 - r.n) >> 3)
		r.n |= 56
		return
	}
	for r.n < want && r.pos < len(r.buf) {
		r.bits |= uint64(r.buf[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
}

// ReadBits reads n bits (n ≤ 32), LSB-first.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic("bits: ReadBits count > 32")
	}
	r.fill(n)
	if r.n < n {
		return 0, ErrUnexpectedEOF
	}
	v := uint32(r.bits) & masks[n]
	r.bits >>= n
	r.n -= n
	return v, nil
}

// ReadBool reads a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// PeekBits returns up to n bits without consuming them, along with how many
// bits were actually available. Used by table-driven Huffman decoders.
func (r *Reader) PeekBits(n uint) (v uint32, avail uint) {
	r.fill(n)
	avail = r.n
	if avail > n {
		avail = n
	}
	return uint32(r.bits) & masks[n], avail
}

// SkipBits consumes n bits that were previously peeked. n must not exceed
// the currently buffered bit count.
func (r *Reader) SkipBits(n uint) {
	if n > r.n {
		panic("bits: SkipBits beyond buffered bits")
	}
	r.bits >>= n
	r.n -= n
}

// AlignByte discards buffered bits up to the next byte boundary.
func (r *Reader) AlignByte() {
	drop := r.n % 8
	r.bits >>= drop
	r.n -= drop
}

// ReadBytes byte-aligns the stream and copies len(p) bytes into p.
func (r *Reader) ReadBytes(p []byte) error {
	r.AlignByte()
	for i := range p {
		if r.n >= 8 {
			p[i] = byte(r.bits)
			r.bits >>= 8
			r.n -= 8
			continue
		}
		// Reservoir drained (n == 0 after the byte-aligned loop). Any
		// speculative continuation bits above n refer to the bytes at
		// pos, which are consumed directly below — drop them.
		r.bits = 0
		if r.pos >= len(r.buf) {
			return io.ErrUnexpectedEOF
		}
		p[i] = r.buf[r.pos]
		r.pos++
	}
	return nil
}

// BitsRemaining reports how many unread bits remain.
func (r *Reader) BitsRemaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.n)
}

// Reset re-points the Reader at p and clears all buffered state, so a
// pooled Reader is reused without allocation.
func (r *Reader) Reset(p []byte) { *r = Reader{buf: p} }
