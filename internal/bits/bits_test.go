package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTripSimple(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	w.WriteBits(0x3FFFFFFF, 30)
	out := w.Bytes()

	r := NewReader(out)
	for _, tc := range []struct {
		n    uint
		want uint32
	}{{3, 0b101}, {16, 0xABCD}, {1, 1}, {30, 0x3FFFFFFF}} {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", tc.n, err)
		}
		if got != tc.want {
			t.Errorf("ReadBits(%d) = %#x, want %#x", tc.n, got, tc.want)
		}
	}
}

func TestWriterAlignByte(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 1)
	w.AlignByte()
	w.WriteBits(0xFF, 8)
	out := w.Bytes()
	if len(out) != 2 || out[0] != 0x01 || out[1] != 0xFF {
		t.Fatalf("got %v, want [0x01 0xFF]", out)
	}
}

func TestWriterWriteBytes(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b11, 2)
	w.WriteBytes([]byte{0xDE, 0xAD})
	out := w.Bytes()
	if !bytes.Equal(out, []byte{0x03, 0xDE, 0xAD}) {
		t.Fatalf("got %x, want 03dead", out)
	}
}

func TestReaderReadBytesAfterBits(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1, 1)
	w.WriteBytes([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := r.ReadBytes(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xA5, 8)
	w.WriteBits(0x5A, 8)
	r := NewReader(w.Bytes())
	v, avail := r.PeekBits(12)
	if avail != 12 {
		t.Fatalf("avail = %d", avail)
	}
	if v != (0xA5 | (0x5A&0xF)<<8) {
		t.Fatalf("peek = %#x", v)
	}
	r.SkipBits(4)
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xAA { // 0xA5>>4 = 0xA low nibble, then 0xA from 0x5A
		t.Fatalf("after skip got %#x, want 0xAA", got)
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(0b1, 3); got != 0b100 {
		t.Errorf("Reverse(0b1,3) = %#b", got)
	}
	if got := Reverse(0b1011, 4); got != 0b1101 {
		t.Errorf("Reverse(0b1011,4) = %#b", got)
	}
	if got := Reverse(Reverse(0x12345, 20), 20); got != 0x12345 {
		t.Errorf("double reverse = %#x", got)
	}
}

func TestBitsWritten(t *testing.T) {
	w := NewWriter(4)
	if w.BitsWritten() != 0 {
		t.Fatal("fresh writer has bits")
	}
	w.WriteBits(0, 5)
	if w.BitsWritten() != 5 {
		t.Fatalf("got %d, want 5", w.BitsWritten())
	}
	w.WriteBits(0, 7)
	if w.BitsWritten() != 12 {
		t.Fatalf("got %d, want 12", w.BitsWritten())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	w.WriteBits(0x1, 8)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("after reset got %v", out)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		widths := make([]uint, n)
		vals := make([]uint32, n)
		w := NewWriter(64)
		for i := 0; i < n; i++ {
			widths[i] = uint(rng.Intn(32) + 1)
			vals[i] = rng.Uint32() & masks[widths[i]]
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
