package pedal_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pedal"
)

// The public facade must expose everything a downstream user needs
// without reaching into internal packages.
func TestFacadeRoundTripAllDesigns(t *testing.T) {
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()

	text := bytes.Repeat([]byte("public api round trip "), 3000)
	floats := make([]byte, 50000*8)
	for i := 0; i < 50000; i++ {
		binary.LittleEndian.PutUint64(floats[i*8:], math.Float64bits(math.Sin(float64(i)*0.01)))
	}
	for _, d := range pedal.Designs() {
		data, dt := text, pedal.TypeBytes
		if d.Algo == pedal.AlgoSZ3 {
			data, dt = floats, pedal.TypeFloat64
		}
		msg, rep, err := lib.Compress(d, dt, data)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if rep.Ratio() <= 1 {
			t.Errorf("%v: ratio %.2f", d, rep.Ratio())
		}
		out, _, err := lib.Decompress(d.Engine, dt, msg, len(data)+64)
		if err != nil {
			t.Fatalf("%v decompress: %v", d, err)
		}
		if d.Algo != pedal.AlgoSZ3 && !bytes.Equal(out, data) {
			t.Fatalf("%v: mismatch", d)
		}
	}
}

func TestFacadeDesignConstantsMatchTable3(t *testing.T) {
	want := map[string]pedal.Design{
		"SoC_DEFLATE":      pedal.DesignSoCDeflate,
		"C-Engine_DEFLATE": pedal.DesignCEngineDeflate,
		"SoC_zlib":         pedal.DesignSoCZlib,
		"C-Engine_zlib":    pedal.DesignCEngineZlib,
		"SoC_LZ4":          pedal.DesignSoCLZ4,
		"C-Engine_LZ4":     pedal.DesignCEngineLZ4,
		"SoC_SZ3":          pedal.DesignSoCSZ3,
		"C-Engine_SZ3":     pedal.DesignCEngineSZ3,
	}
	for name, d := range want {
		if d.String() != name {
			t.Errorf("%v.String() = %q, want %q", d, d.String(), name)
		}
	}
	if len(pedal.Designs()) != 8 {
		t.Errorf("Designs() = %d entries, want 8", len(pedal.Designs()))
	}
	if len(pedal.LosslessDesigns()) != 6 {
		t.Errorf("LosslessDesigns() = %d entries, want 6", len(pedal.LosslessDesigns()))
	}
}

func TestFacadeParseHeader(t *testing.T) {
	lib, err := pedal.Init(pedal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	msg, _, err := lib.Compress(pedal.DesignSoCLZ4, pedal.TypeBytes, bytes.Repeat([]byte("h"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	algo, body, err := pedal.ParseHeader(msg)
	if err != nil || algo != pedal.AlgoLZ4 {
		t.Fatalf("ParseHeader: %v %v", algo, err)
	}
	if len(body) != len(msg)-3 {
		t.Fatal("body length")
	}
	if _, _, err := pedal.ParseHeader([]byte("not a pedal message")); err == nil {
		t.Fatal("garbage accepted as header")
	}
}

func TestFacadeGenerationDefaults(t *testing.T) {
	lib, err := pedal.Init(pedal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	if lib.Generation() != pedal.BlueField2 {
		t.Fatalf("default generation = %v", lib.Generation())
	}
}
