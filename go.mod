module pedal

go 1.22
