// mpi-broadcast: the paper's §V-E scenario — distributing a large model
// or dataset from one root to a cluster with MPI_Bcast, compressed on
// the fly by PEDAL. Four simulated BlueField-2 nodes broadcast the
// 20.6 MB silesia/samba stand-in and the example compares the modelled
// broadcast time across designs, reproducing the Fig. 11 shape: the BF2
// C-Engine designs win big over the baseline, the SoC designs less so.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
)

const nodes = 4

func main() {
	payload := datasets.SilesiaSamba().Bytes()
	fmt.Printf("broadcast: %.1f MB (silesia/samba stand-in) across %d nodes\n\n",
		float64(len(payload))/(1<<20), nodes)

	designs := []struct {
		name string
		opts mpi.WorldOptions
	}{
		{"baseline (no PEDAL)", mpi.WorldOptions{
			Generation:  hwmodel.BlueField2,
			Baseline:    true,
			Compression: &mpi.CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
		}},
		{"BF2 SoC_DEFLATE", worldFor(hwmodel.BlueField2, hwmodel.SoC)},
		{"BF2 C-Engine_DEFLATE", worldFor(hwmodel.BlueField2, hwmodel.CEngine)},
		{"BF3 SoC_DEFLATE", worldFor(hwmodel.BlueField3, hwmodel.SoC)},
		{"BF3 C-Engine_DEFLATE (redirected)", worldFor(hwmodel.BlueField3, hwmodel.CEngine)},
	}
	var baselineTime time.Duration
	for i, d := range designs {
		lat, err := oneBcast(d.opts, payload)
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		speedup := ""
		if i == 0 {
			baselineTime = lat
		} else {
			speedup = fmt.Sprintf("  (%.1fx vs baseline)", float64(baselineTime)/float64(lat))
		}
		fmt.Printf("%-36s modelled bcast time: %12v%s\n", d.name, lat, speedup)
	}
}

func worldFor(gen hwmodel.Generation, engine hwmodel.Engine) mpi.WorldOptions {
	return mpi.WorldOptions{
		Generation:  gen,
		Compression: &mpi.CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: engine}},
	}
}

// oneBcast broadcasts payload from rank 0 and returns the completion
// time of the slowest rank.
func oneBcast(opts mpi.WorldOptions, payload []byte) (time.Duration, error) {
	comms, err := mpi.NewWorld(nodes, opts)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for _, c := range comms {
		wg.Add(1)
		go func(c *mpi.Comm) {
			defer wg.Done()
			var in []byte
			if c.Rank() == 0 {
				in = payload
			}
			got, err := c.Bcast(0, in)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("rank %d received corrupted broadcast", c.Rank())
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	var slowest time.Duration
	for _, c := range comms {
		if t := c.Clock().Now(); t > slowest {
			slowest = t
		}
	}
	return slowest, nil
}
