// scientific-data: error-bounded lossy compression of simulation output
// with the SZ3 design — the paper's scientific-computing use case. A 3-D
// turbulence-like field is compressed at several error bounds on the
// simulated DPU, showing the ratio/accuracy trade-off and the hybrid
// SoC + C-Engine pipeline (the lossless backend stage offloaded to the
// accelerator, Fig. 4).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"pedal"
)

func main() {
	// A smooth 3-D field with small turbulent perturbations, flattened to
	// float64 bytes (64 × 64 × 64).
	const nx, ny, nz = 64, 64, 64
	vals := make([]float64, nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				x, y, z := float64(i)/nx, float64(j)/ny, float64(k)/nz
				vals[(i*ny+j)*nz+k] = math.Sin(4*math.Pi*x)*math.Cos(2*math.Pi*y)*math.Exp(-z) +
					0.01*math.Sin(40*math.Pi*x*y*z)
			}
		}
	}
	raw := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	fmt.Printf("field: %d elements (%.2f MB float64)\n\n", len(vals), float64(len(raw))/(1<<20))

	fmt.Println("error bound   out(B)    ratio    max observed error   engine")
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2, ErrorBound: eb})
		if err != nil {
			log.Fatal(err)
		}
		msg, rep, err := lib.Compress(pedal.DesignCEngineSZ3, pedal.TypeFloat64, raw)
		if err != nil {
			log.Fatal(err)
		}
		out, _, err := lib.Decompress(pedal.CEngine, pedal.TypeFloat64, msg, len(raw)+64)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for i := range vals {
			got := math.Float64frombits(binary.LittleEndian.Uint64(out[i*8:]))
			if d := math.Abs(got - vals[i]); d > worst {
				worst = d
			}
		}
		if worst > eb*(1+1e-9) {
			log.Fatalf("error bound %g violated: %g", eb, worst)
		}
		fmt.Printf("%-12.0e  %-8d  %-7.2f  %-19.3e  %v\n",
			eb, rep.OutBytes, rep.Ratio(), worst, rep.Engine)
		lib.Finalize()
	}
	fmt.Println("\nevery reconstruction honours its absolute error bound (SZ3 guarantee)")
}
