// checkpoint: distributed checkpoint aggregation — the communication-
// intensive HPC pattern the paper's introduction motivates. Eight
// simulated ranks each hold a slab of simulation state (float64 field);
// every rank lossy-compresses its slab with SZ3 under a 1e-4 bound and
// the root gathers the compressed checkpoints, cutting the bytes moved
// by the compression ratio.
//
// The run reports per-rank ratios, the total data moved with and without
// PEDAL, and verifies every reconstructed slab against its error bound.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"

	"pedal"
	"pedal/internal/mpi"
)

const (
	ranks    = 8
	slabElem = 200000 // float64 per rank
)

// slab synthesises rank r's share of the global field.
func slab(r int) []byte {
	out := make([]byte, slabElem*8)
	for i := 0; i < slabElem; i++ {
		x := float64(r*slabElem+i) * 1e-4
		v := math.Sin(x) + 0.2*math.Cos(13*x)
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func main() {
	comms, err := mpi.NewWorld(ranks, mpi.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()

	var (
		mu        sync.Mutex
		gathered  [][]byte
		rawBytes  int
		compBytes int
	)
	var wg sync.WaitGroup
	for _, c := range comms {
		wg.Add(1)
		go func(c *mpi.Comm) {
			defer wg.Done()
			lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
			if err != nil {
				log.Fatal(err)
			}
			defer lib.Finalize()
			mine := slab(c.Rank())
			msg, rep, err := lib.Compress(pedal.DesignCEngineSZ3, pedal.TypeFloat64, mine)
			if err != nil {
				log.Fatalf("rank %d: %v", c.Rank(), err)
			}
			mu.Lock()
			rawBytes += len(mine)
			compBytes += len(msg)
			mu.Unlock()
			fmt.Printf("rank %d: %7d -> %7d bytes (ratio %.1f, %v)\n",
				c.Rank(), rep.InBytes, rep.OutBytes, rep.Ratio(), rep.Engine)

			res, err := c.Gather(0, msg)
			if err != nil {
				log.Fatalf("rank %d gather: %v", c.Rank(), err)
			}
			if c.Rank() == 0 {
				mu.Lock()
				gathered = res
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// Root verifies every checkpoint against the error bound.
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Finalize()
	worst := 0.0
	for r, msg := range gathered {
		out, _, err := lib.Decompress(pedal.CEngine, pedal.TypeFloat64, msg, slabElem*8+64)
		if err != nil {
			log.Fatalf("slab %d: %v", r, err)
		}
		orig := slab(r)
		for i := 0; i < slabElem; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(orig[i*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(out[i*8:]))
			if d := math.Abs(a - b); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-4*(1+1e-9) {
		log.Fatalf("error bound violated: %g", worst)
	}
	fmt.Printf("\ncheckpoint aggregated: %d ranks, %.1f MB raw -> %.2f MB moved (%.1fx reduction)\n",
		ranks, float64(rawBytes)/(1<<20), float64(compBytes)/(1<<20),
		float64(rawBytes)/float64(compBytes))
	fmt.Printf("worst reconstruction error: %.3g (bound 1e-4 holds on every element)\n", worst)
}
