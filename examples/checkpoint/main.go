// checkpoint: crash-consistent compressed checkpoint/restart — the
// storage fault domain end to end. Four simulated ranks periodically
// snapshot a drifting field into a ckpt.Store: each epoch's shards are
// deflate-compressed, digest-verified, replicated and committed under
// the store's two-phase protocol (staged, fsync'd, atomically renamed).
//
// The demo then does what real storage does:
//
//  1. commits three epochs cleanly;
//  2. kills the committer mid-commit of epoch 4 (torn write at the kill
//     point, unsynced state dropped) and restarts — restore lands on
//     epoch 3, complete and verified, never a torn hybrid;
//  3. flips a bit in one committed shard copy (silent media rot) and
//     restores again — the digest mismatch is detected and the copy
//     read-repaired from its surviving replica;
//  4. scrubs the store to prove it is whole.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"pedal/internal/ckpt"
	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
)

const ranks = 4

func main() {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Finalize()

	snap := datasets.Snapshots{Seed: 7, Ranks: ranks, Elems: 64 * 1024}
	comp := &ckpt.LibraryCompressor{
		Lib:    lib,
		Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC},
		Type:   core.TypeBytes,
	}
	cfg := ckpt.Config{Compressor: comp, Replicas: 2, Retain: 3}

	// MemFS models durability precisely: unsynced bytes vanish at a
	// crash, exactly like a power loss under a page cache.
	disk := ckpt.NewMemFS()
	store, err := ckpt.Open(disk, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. three clean periodic snapshots -----------------------------
	for e := uint64(1); e <= 3; e++ {
		m, err := store.Commit(e, snap.Epoch(e))
		if err != nil {
			log.Fatalf("epoch %d: %v", e, err)
		}
		var stored uint64
		for _, sh := range m.Shards {
			stored += sh.Size
		}
		raw := ranks * 64 * 1024 * 4
		fmt.Printf("epoch %d committed: %d ranks, %7d -> %7d bytes (%.1fx, %d replicas)\n",
			e, ranks, raw, stored, float64(raw)/float64(stored), m.Replicas)
	}

	// --- 2. kill the committer mid-commit of epoch 4 -------------------
	inj := faults.NewDiskInjector(faults.DiskFaultConfig{Seed: 42, CrashAfterOps: 9})
	dying := ckpt.NewFaultFS(disk, inj)
	doomed, err := ckpt.Open(dying, cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, err = doomed.Commit(4, snap.Epoch(4))
	if !errors.Is(err, ckpt.ErrCrashed) {
		log.Fatalf("expected the injected crash, got %v", err)
	}
	fmt.Printf("\nepoch 4 commit killed at syscall 9: %v\n", err)

	// Restart: a fresh process opens the surviving bytes.
	store, err = ckpt.Open(disk, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := store.Restore()
	if err != nil {
		log.Fatal(err)
	}
	verify(snap, cp)
	fmt.Printf("restart restored epoch %d: all %d shards digest-verified (no torn hybrid)\n",
		cp.Epoch, len(cp.Shards))

	// --- 3. silent bit rot, detected and read-repaired -----------------
	rotted := ckpt.ShardPath(cp.Epoch, 1, 0)
	if err := ckpt.FlipBit(disk, rotted, 12345); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflipped one bit in %s (silent media rot)\n", rotted)
	cp, err = store.Restore()
	if err != nil {
		log.Fatal(err)
	}
	verify(snap, cp)
	fmt.Printf("restore detected %d rotten copy, repaired %d from the surviving replica\n",
		cp.RotDetected, cp.Repaired)

	// --- 4. scrub proves the store is whole again ----------------------
	rep, err := store.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscrub: %d epochs, %d shard copies checked, %d rotten, %d condemned — store is whole\n",
		rep.Epochs, rep.ShardCopies, rep.RotDetected, len(rep.Condemned))
}

// verify checks every restored shard byte-for-byte against the snapshot
// series it came from.
func verify(snap datasets.Snapshots, cp *ckpt.Checkpoint) {
	want := snap.Epoch(cp.Epoch)
	for r := range want {
		if !bytes.Equal(cp.Shards[r], want[r]) {
			log.Fatalf("rank %d of restored epoch %d does not match its snapshot", r, cp.Epoch)
		}
	}
}
