// Quickstart: initialise PEDAL on a simulated BlueField-2, compress a
// buffer with every design of the paper's Table III, and decompress it
// back — showing ratios, the engine that actually executed, and the
// modelled hardware time.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"pedal"
)

func main() {
	// PEDAL_init: device open, DOCA setup, memory pools — paid once.
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Finalize()

	// A compressible text-like message for the lossless designs.
	text := bytes.Repeat([]byte("<event t=\"12:00\"><node>7</node><load>0.83</load></event>\n"), 4000)
	// A smooth float64 field for the lossy (SZ3) design.
	field := make([]byte, 100000*8)
	for i := 0; i < 100000; i++ {
		binary.LittleEndian.PutUint64(field[i*8:], math.Float64bits(math.Sin(float64(i)*0.002)))
	}

	fmt.Println("design            in(B)     out(B)    ratio   engine     modelled")
	for _, d := range pedal.Designs() {
		data, dt := text, pedal.TypeBytes
		if d.Algo == pedal.AlgoSZ3 {
			data, dt = field, pedal.TypeFloat64
		}
		msg, rep, err := lib.Compress(d, dt, data)
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		out, _, err := lib.Decompress(d.Engine, dt, msg, len(data)+64)
		if err != nil {
			log.Fatalf("%v decompress: %v", d, err)
		}
		if d.Algo != pedal.AlgoSZ3 && !bytes.Equal(out, data) {
			log.Fatalf("%v: round trip mismatch", d)
		}
		fb := ""
		if rep.Fallback {
			fb = " (→SoC)"
		}
		fmt.Printf("%-16s  %-8d  %-8d  %-6.2f  %-9s  %v%s\n",
			d, rep.InBytes, rep.OutBytes, rep.Ratio(), rep.Engine, rep.Virtual, fb)
		lib.Release(msg)
	}

	hits, misses := lib.PoolStats()
	fmt.Printf("\nmemory pool: %d hits, %d misses (PEDAL pre-arranges buffers at init)\n", hits, misses)
}
