// mpi-pt2pt: on-the-fly compressed MPI point-to-point messaging — the
// co-design of the paper's §IV. Two simulated ranks exchange a large,
// compressible message; the PEDAL hook between the MPI shim and
// transport layers compresses Rendezvous-class messages transparently,
// and the receiver decompresses into the user buffer.
//
// The example runs the same transfer three ways and prints the modelled
// latency of each: uncompressed, PEDAL SoC_DEFLATE, PEDAL
// C-Engine_DEFLATE — showing the C-Engine design's dramatic win and the
// unchanged MPI API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
)

func main() {
	payload := bytes.Repeat([]byte("halo-exchange boundary row 0017 values 3.14 2.71 1.41 ...\n"), 200000)
	fmt.Printf("message: %.1f MB of simulation-log text\n\n", float64(len(payload))/(1<<20))

	cases := []struct {
		name string
		opts mpi.WorldOptions
	}{
		{"uncompressed", mpi.WorldOptions{Generation: hwmodel.BlueField2}},
		{"PEDAL SoC_DEFLATE", mpi.WorldOptions{
			Generation:  hwmodel.BlueField2,
			Compression: &mpi.CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}},
		}},
		{"PEDAL C-Engine_DEFLATE", mpi.WorldOptions{
			Generation:  hwmodel.BlueField2,
			Compression: &mpi.CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
		}},
		{"baseline (no PEDAL, init per message)", mpi.WorldOptions{
			Generation:  hwmodel.BlueField2,
			Baseline:    true,
			Compression: &mpi.CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
		}},
	}
	for _, c := range cases {
		lat, err := oneTransfer(c.opts, payload)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-40s modelled end-to-end latency: %v\n", c.name, lat)
	}
}

// oneTransfer sends payload rank0 → rank1 and returns the receiver's
// modelled completion time.
func oneTransfer(opts mpi.WorldOptions, payload []byte) (time.Duration, error) {
	comms, err := mpi.NewWorld(2, opts)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := comms[0].Send(1, 0, payload); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		got, err := comms[1].Recv(0, 0, len(payload)+64)
		if err != nil {
			errs <- err
			return
		}
		if !bytes.Equal(got, payload) {
			errs <- fmt.Errorf("payload corrupted in transit")
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	return comms[1].Clock().Now(), nil
}
