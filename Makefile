GO ?= go

# Packages exercised with the race detector: the concurrency-heavy layers
# (engine queue + close protocol, retry path, MPI runtime).
RACE_PKGS = ./internal/dpu ./internal/doca ./internal/mpi

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem

check: build vet test race
