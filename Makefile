GO ?= go

# Packages exercised with the race detector: the concurrency-heavy layers
# (engine queue + close protocol + watchdog, retry path, MPI runtime,
# reliability sublayer, service admission control, breaker half-open
# probes).
RACE_PKGS = ./internal/dpu ./internal/doca ./internal/mpi ./internal/transport ./internal/service ./internal/pipeline ./internal/faults ./internal/fleet ./internal/ckpt ./internal/mempool

# Per-target budget for the fuzz smoke pass (each Fuzz* function runs
# this long beyond its seed corpus).
FUZZ_TIME ?= 2s

# Every fuzz target in the tree as package:Function pairs. `go test
# -fuzz` accepts one target per invocation, so the fuzz goal loops.
FUZZ_TARGETS = \
	./internal/fastlz:FuzzDecompress \
	./internal/fastlz:FuzzRoundTrip \
	./internal/lz4:FuzzDecompressBlock \
	./internal/lz4:FuzzDecompressFrame \
	./internal/lz4:FuzzBlockRoundTrip \
	./internal/lz4:FuzzFrameRoundTrip \
	./internal/sz3:FuzzDecompressContainer \
	./internal/sz3:FuzzRoundTripBound \
	./internal/gzipfmt:FuzzDecompress \
	./internal/lz77:FuzzLZ77RoundTrip \
	./internal/flate:FuzzDecompress \
	./internal/flate:FuzzRoundTrip \
	./internal/flate:FuzzDifferentialStdlib \
	./internal/flate:FuzzInflateCorrupt \
	./internal/sz3:FuzzSZ3DecodeCorrupt \
	./internal/pipeline:FuzzChunkFrame \
	./internal/pipeline:FuzzDescriptor \
	./internal/mpi:FuzzEnvelope \
	./internal/service:FuzzProtocol \
	./internal/ckpt:FuzzManifest

# Kernel benchmark sweep recorded in BENCH_kernels.json: the SWAR hot
# loops (match finder, Huffman codec, SZ3 quantization slabs) plus the
# end-to-end chunk path they feed.
KERNEL_BENCH = { \
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/lz77 ./internal/huffman ./internal/sz3; \
	$(GO) test -run='^$$' -bench='^(BenchmarkCompressChunk|BenchmarkDecompressChunk)$$' -benchmem .; }

.PHONY: all build vet test race fuzz bench benchdiff check soak

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short coverage-guided smoke pass over every fuzz corpus; catches
# decoder regressions that fixed unit inputs miss.
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZ_TIME) >/dev/null; \
	done

bench:
	$(GO) test -bench=. -benchmem
	$(GO) test -run='^$$' -json \
		-bench='^(BenchmarkCompressChunk|BenchmarkDecompressChunk|BenchmarkPipelineOverlap|BenchmarkVerifiedCompress|BenchmarkExtPipeline)$$' \
		-benchmem . > BENCH_pipeline.json
	$(KERNEL_BENCH) | $(GO) run ./cmd/benchdiff -update BENCH_kernels.json

# Re-run the kernel benchmarks and fail if anything slowed down more than
# 15% against the committed BENCH_kernels.json (or if a zero-allocation
# hot path started allocating).
benchdiff:
	$(KERNEL_BENCH) | $(GO) run ./cmd/benchdiff -check BENCH_kernels.json

# Full-scale chaos soaks (fixed seed matrices): the engine fault-domain
# sweep (stall/wedge/reset-fail over serial + pipelined paths), the
# network sweep (lossy fabric + overloaded daemon), the rank
# fault-domain sweep (crash/hang/restart mid-collective, detector +
# shrink), and the fleet sweep (sharded pedald under crash/stall/
# restart/overload/drain), the storage sweep (checkpoint store under
# tear/rot/stall/crash-mid-commit), the compute sweep (silent data
# corruption under verified compression, hop checksums and quarantine),
# and the overload sweep (memory-budget squeezes, slow consumers and
# deadline storms under budgets + brownout). `make check` runs them when
# SOAK=1; standalone `make soak` always does.
soak:
	$(GO) test -count=1 -run '^(TestExtEngineFaultsSoak|TestExtNetFaultsSoak|TestExtRankFaultsSoak|TestExtFleetFaultsSoak|TestExtCkptFaultsSoak|TestExtSDCFaultsSoak|TestExtOverloadFaultsSoak)$$' -v ./internal/experiments

check: build vet test race fuzz
ifeq ($(SOAK),1)
check: soak
endif
